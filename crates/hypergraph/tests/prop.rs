//! Property-based tests for the hypergraph foundation: builder invariants,
//! CSR consistency, partition bookkeeping, metric identities, and hMETIS
//! round-trips over arbitrary netlists.

use mlpart_hypergraph::io::{read_hgr, write_hgr};
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::{metrics, Hypergraph, HypergraphBuilder, ModuleId, Partition};
use proptest::prelude::*;

/// Strategy: an arbitrary small netlist as (module areas, nets of indices).
fn arb_netlist() -> impl Strategy<Value = (Vec<u64>, Vec<Vec<usize>>)> {
    (2usize..40).prop_flat_map(|n| {
        let areas = proptest::collection::vec(1u64..20, n);
        let nets = proptest::collection::vec(proptest::collection::vec(0usize..n, 1..8), 0..60);
        (areas, nets)
    })
}

fn build(areas: Vec<u64>, nets: &[Vec<usize>]) -> Hypergraph {
    let mut b = HypergraphBuilder::new(areas);
    for net in nets {
        b.add_net(net.iter().copied()).expect("indices in range");
    }
    b.build().expect("valid netlist")
}

proptest! {
    #[test]
    fn builder_produces_consistent_csr((areas, nets) in arb_netlist()) {
        let h = build(areas.clone(), &nets);
        prop_assert!(h.validate());
        prop_assert_eq!(h.num_modules(), areas.len());
        prop_assert_eq!(h.total_area(), areas.iter().sum::<u64>());
        // Every surviving net has >= 2 distinct pins, none out of range.
        for e in h.net_ids() {
            prop_assert!(h.net_size(e) >= 2);
            let mut pins: Vec<_> = h.pins(e).to_vec();
            pins.sort();
            pins.dedup();
            prop_assert_eq!(pins.len(), h.net_size(e), "duplicate pins survived");
        }
        // Pin count identities.
        let total_degree: usize = h.modules().map(|v| h.degree(v)).sum();
        prop_assert_eq!(total_degree, h.num_pins());
    }

    #[test]
    fn hgr_roundtrip_is_identity((areas, nets) in arb_netlist()) {
        let h = build(areas, &nets);
        let mut text = Vec::new();
        write_hgr(&h, &mut text).expect("write to memory");
        let h2 = read_hgr(&text[..]).expect("parse own output");
        prop_assert_eq!(h, h2);
    }

    #[test]
    fn partition_move_bookkeeping(
        (areas, nets) in arb_netlist(),
        moves in proptest::collection::vec((0usize..40, 0u32..4), 0..50),
        k in 2u32..5,
    ) {
        let h = build(areas, &nets);
        let mut rng = seeded_rng(1);
        let mut p = Partition::random(&h, k, &mut rng);
        for (vi, part) in moves {
            let v = ModuleId::new(vi % h.num_modules());
            p.move_module(&h, v, part % k);
            prop_assert!(p.validate(&h));
        }
        prop_assert_eq!(p.part_areas().iter().sum::<u64>(), h.total_area());
    }

    #[test]
    fn cut_identities((areas, nets) in arb_netlist(), k in 2u32..5) {
        let h = build(areas, &nets);
        let mut rng = seeded_rng(2);
        let p = Partition::random(&h, k, &mut rng);
        let cut = metrics::cut(&h, &p);
        let sod = metrics::sum_of_spans_minus_one(&h, &p);
        // cut <= sum-of-degrees <= (k-1) * cut.
        prop_assert!(cut <= sod);
        prop_assert!(sod <= cut * (k as u64 - 1).max(1));
        // k = 2: equality.
        if k == 2 {
            prop_assert_eq!(cut, sod);
        }
        // Single-part partition has zero cut.
        let uniform = Partition::from_assignment(&h, k, vec![0; h.num_modules()])
            .expect("valid");
        prop_assert_eq!(metrics::cut(&h, &uniform), 0);
    }

    #[test]
    fn net_span_bounds((areas, nets) in arb_netlist(), k in 2u32..6) {
        let h = build(areas, &nets);
        let mut rng = seeded_rng(3);
        let p = Partition::random(&h, k, &mut rng);
        for e in h.net_ids() {
            let span = metrics::net_span(&h, &p, e);
            prop_assert!(span >= 1);
            prop_assert!(span as usize <= h.net_size(e));
            prop_assert!(span <= k);
            prop_assert_eq!(span > 1, metrics::is_net_cut(&h, &p, e));
        }
    }

    #[test]
    fn random_partition_roughly_balanced((areas, nets) in arb_netlist()) {
        let h = build(areas, &nets);
        let mut rng = seeded_rng(4);
        let p = Partition::random(&h, 2, &mut rng);
        // Each side within half the total ± the largest module.
        let half = h.total_area() / 2;
        let slack = h.max_area();
        prop_assert!(p.part_area(0) + slack >= half);
        prop_assert!(p.part_area(0) <= half + slack + 1);
    }
}
