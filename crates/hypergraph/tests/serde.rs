//! Round-trip tests for the optional `serde` feature: netlists and
//! partitions survive JSON serialization bit-exactly.

#![cfg(feature = "serde")]

use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::{Hypergraph, HypergraphBuilder, ModuleId, NetId, Partition};

fn sample() -> Hypergraph {
    let mut b = HypergraphBuilder::new(vec![2, 1, 1, 5]);
    b.add_net([0, 1, 2]).expect("in range");
    b.add_weighted_net([2, 3], 7).expect("in range");
    b.build().expect("valid")
}

#[test]
fn hypergraph_json_roundtrip() {
    let h = sample();
    let json = serde_json::to_string(&h).expect("serializes");
    let back: Hypergraph = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(h, back);
    assert!(back.validate());
    assert_eq!(back.net_weight(NetId::new(1)), 7);
    assert_eq!(back.total_area(), 9);
}

#[test]
fn partition_json_roundtrip() {
    let h = sample();
    let mut rng = seeded_rng(3);
    let p = Partition::random(&h, 2, &mut rng);
    let json = serde_json::to_string(&p).expect("serializes");
    let back: Partition = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(p, back);
    assert!(back.validate(&h));
}

#[test]
fn ids_serialize_transparently() {
    assert_eq!(serde_json::to_string(&ModuleId::new(5)).expect("ok"), "5");
    assert_eq!(serde_json::to_string(&NetId::new(9)).expect("ok"), "9");
    let v: ModuleId = serde_json::from_str("12").expect("ok");
    assert_eq!(v, ModuleId::new(12));
}

#[test]
fn tampered_partition_fails_validate() {
    // Deserialization is intentionally unchecked (it trusts its own
    // serializer); validate() is the defense against foreign data.
    let h = sample();
    let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).expect("valid");
    let mut json = serde_json::to_string(&p).expect("serializes");
    // Corrupt the cached areas.
    json = json.replace("\"part_areas\":[3,6]", "\"part_areas\":[9,0]");
    let tampered: Partition = serde_json::from_str(&json).expect("parses");
    assert!(!tampered.validate(&h), "corrupted areas must be caught");
}
