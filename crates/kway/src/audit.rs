//! Phase-boundary invariant checkers for the Sanchis k-way engine state.
//!
//! Only compiled under the `audit` feature. The k-way engine keeps
//! k-strided pin counts and one gain bucket per destination part; these
//! checkers re-derive every stored quantity from scratch — pin rows from
//! the partition alone, Sanchis gains from the recomputed rows, the
//! objective by a full sweep — and compare against the engine's
//! incremental bookkeeping.

use crate::{KwayConfig, KwayGain};
use mlpart_audit::{audit_partition, AuditError, AuditResult};
use mlpart_fm::RefineState;
use mlpart_hypergraph::{Hypergraph, ModuleId, NetId, PartId, Partition};

const ST: &str = "KwayState";

fn err(check: &'static str, detail: String) -> AuditError {
    AuditError::new(ST, check, detail)
}

/// Pin counts of net `e` per part, recomputed from the partition alone.
fn recount_row(h: &Hypergraph, p: &Partition, e: NetId, k: usize) -> Vec<u32> {
    let mut row = vec![0u32; k];
    for &v in h.pins(e) {
        row[p.part(v) as usize] += 1;
    }
    row
}

/// Sanchis gain of moving `v` to `to`, re-derived from scratch: the pin
/// rows come from [`recount_row`], not from the engine's `pins_in`.
fn rederive_gain(
    st: &RefineState,
    h: &Hypergraph,
    p: &Partition,
    cfg: &KwayConfig,
    v: ModuleId,
    to: PartId,
) -> i32 {
    let k = st.k as usize;
    let from = p.part(v) as usize;
    let mut g = 0i32;
    for &e in h.nets(v) {
        if !st.visible[e.index()] {
            continue;
        }
        let row = recount_row(h, p, e, k);
        let w = h.net_weight(e) as i32;
        match cfg.gain {
            KwayGain::SumOfDegrees => {
                if row[from] == 1 {
                    g += w;
                }
                if row[to as usize] == 0 {
                    g -= w;
                }
            }
            KwayGain::NetCut => {
                let size = h.net_size(e) as u32;
                if row[to as usize] == size - 1 {
                    g += w;
                }
                if row[from] == size {
                    g -= w;
                }
            }
        }
    }
    g
}

/// Shape and pin-count audit shared by both phase boundaries.
fn audit_counts(st: &RefineState, h: &Hypergraph, p: &Partition, cfg: &KwayConfig) -> AuditResult {
    let k = p.k() as usize;
    if st.k as usize != k {
        return Err(err(
            "bound-k",
            format!("state bound with k={}, partition has k={k}", st.k),
        ));
    }
    if st.visible.len() != h.num_nets() || st.pins_in.len() != k * h.num_nets() {
        return Err(err(
            "bound-shape",
            format!(
                "visible/pins_in sized {}/{} for {} nets at k={k}",
                st.visible.len(),
                st.pins_in.len(),
                h.num_nets()
            ),
        ));
    }
    for e in h.net_ids() {
        let want_visible = h.net_size(e) <= cfg.max_net_size;
        if st.visible[e.index()] != want_visible {
            return Err(err(
                "visibility",
                format!(
                    "net of size {} marked {}, max_net_size={}",
                    h.net_size(e),
                    st.visible[e.index()],
                    cfg.max_net_size
                ),
            )
            .with_net(e.index()));
        }
        if !want_visible {
            continue;
        }
        let row = recount_row(h, p, e, k);
        let stored = &st.pins_in[e.index() * k..(e.index() + 1) * k];
        if stored != row.as_slice() {
            return Err(err(
                "pins-recount",
                format!("stored pin row {stored:?} != recomputed {row:?}"),
            )
            .with_net(e.index()));
        }
    }
    Ok(())
}

/// Pass-start audit, run right after the per-destination buckets are
/// filled: partition balance counters, k-strided pin rows, and — for every
/// movable module and every foreign destination — the bucketed Sanchis
/// gain against its from-scratch re-derivation. Fixed and locked modules
/// must be absent from every bucket; a module must never be bucketed
/// toward its own part.
pub fn audit_pass_start(
    st: &RefineState,
    h: &Hypergraph,
    p: &Partition,
    cfg: &KwayConfig,
    start_obj: u64,
) -> AuditResult {
    audit_partition(h, p)?;
    audit_counts(st, h, p, cfg)?;
    let k = p.k();
    let recomputed = crate::kway_objective(st, h, cfg, p);
    if recomputed != start_obj {
        return Err(err(
            "objective-recount",
            format!("engine starts the pass at objective {start_obj}, recount gives {recomputed}"),
        ));
    }
    for v in h.modules() {
        let movable = !st.fixed[v.index()] && !st.locked[v.index()];
        for t in 0..k {
            let in_bucket = st.buckets[t as usize].contains(v);
            if t == p.part(v) {
                if in_bucket {
                    return Err(err(
                        "self-destination",
                        format!("bucketed toward its own part {t}"),
                    )
                    .with_module(v.index()));
                }
                continue;
            }
            if !movable {
                if in_bucket {
                    let why = if st.fixed[v.index()] {
                        "fixed"
                    } else {
                        "locked"
                    };
                    return Err(err(
                        "free-locked",
                        format!("{why} module selectable toward part {t}"),
                    )
                    .with_module(v.index()));
                }
                continue;
            }
            if !in_bucket {
                return Err(err(
                    "free-locked",
                    format!("movable module missing from destination-{t} bucket"),
                )
                .with_module(v.index()));
            }
            let key = st.buckets[t as usize].key_of(v);
            let want = rederive_gain(st, h, p, cfg, v, t);
            if key != want {
                return Err(err(
                    "gain-rederive",
                    format!(
                        "bucketed toward part {t} under gain {key}, re-derivation gives {want}"
                    ),
                )
                .with_module(v.index()));
            }
        }
    }
    Ok(())
}

/// Pass-end audit, run after rollback to the best prefix: partition
/// balance counters and the engine's claimed best objective against a full
/// from-scratch sweep.
pub fn audit_pass_end(
    st: &RefineState,
    h: &Hypergraph,
    p: &Partition,
    cfg: &KwayConfig,
    best_obj: i64,
) -> AuditResult {
    audit_partition(h, p)?;
    let recomputed = crate::kway_objective(st, h, cfg, p) as i64;
    if recomputed != best_obj {
        return Err(err(
            "objective-rollback",
            format!(
                "pass reports best objective {best_obj}, rolled-back partition scores {recomputed}"
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kway_refine_in;
    use mlpart_fm::{BucketPolicy, RefineWorkspace};
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn path4() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0usize, 1]).unwrap();
        b.add_net([1usize, 2]).unwrap();
        b.add_net([2usize, 3]).unwrap();
        b.build().unwrap()
    }

    /// Hand-builds the exact post-fill k=2 state for `path4`, split [0,0,1,1].
    fn filled_state(h: &Hypergraph, p: &Partition, cfg: &KwayConfig) -> RefineState {
        let mut st = RefineState::default();
        st.bind_nets(h, 2, cfg.max_net_size);
        st.bind_modules(h, 2, 4, BucketPolicy::Lifo);
        st.pins_in.copy_from_slice(&[2, 0, 1, 1, 0, 2]);
        for v in h.modules() {
            for t in 0..2u32 {
                if t != p.part(v) {
                    let g = rederive_gain(&st, h, p, cfg, v, t);
                    st.buckets[t as usize].insert(v, g);
                }
            }
        }
        st
    }

    #[test]
    fn healthy_pass_start_state_passes() {
        let h = path4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = KwayConfig::default();
        let st = filled_state(&h, &p, &cfg);
        // Objective: sum-of-degrees over the path = 1 (one crossing net).
        assert_eq!(audit_pass_start(&st, &h, &p, &cfg, 1), Ok(()));
    }

    #[test]
    fn detects_stale_pin_row() {
        let h = path4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = KwayConfig::default();
        let mut st = filled_state(&h, &p, &cfg);
        st.pins_in[3] += 1;
        let e = audit_pass_start(&st, &h, &p, &cfg, 1).unwrap_err();
        assert_eq!(e.check, "pins-recount");
        assert_eq!(e.net, Some(1));
    }

    #[test]
    fn detects_corrupted_sanchis_gain() {
        let h = path4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = KwayConfig::default();
        let mut st = filled_state(&h, &p, &cfg);
        st.buckets[1].update_key(ModuleId::from(0), 3);
        let e = audit_pass_start(&st, &h, &p, &cfg, 1).unwrap_err();
        assert_eq!(e.check, "gain-rederive");
        assert_eq!(e.module, Some(0));
    }

    #[test]
    fn detects_fixed_module_in_bucket() {
        let h = path4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = KwayConfig::default();
        let mut st = filled_state(&h, &p, &cfg);
        st.fixed[1] = true; // still sits in destination-1's bucket
        let e = audit_pass_start(&st, &h, &p, &cfg, 1).unwrap_err();
        assert_eq!(e.check, "free-locked");
        assert_eq!(e.module, Some(1));
    }

    #[test]
    fn detects_wrong_objective() {
        let h = path4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = KwayConfig::default();
        let st = filled_state(&h, &p, &cfg);
        let e = audit_pass_start(&st, &h, &p, &cfg, 7).unwrap_err();
        assert_eq!(e.check, "objective-recount");
        let e = audit_pass_end(&st, &h, &p, &cfg, 7).unwrap_err();
        assert_eq!(e.check, "objective-rollback");
    }

    #[test]
    fn engine_hooks_fire_when_forced_on() {
        mlpart_audit::force_enabled(true);
        let h = path4();
        let mut p = Partition::from_assignment(&h, 2, vec![0, 1, 0, 1]).unwrap();
        let r = kway_refine_in(
            &h,
            &mut p,
            &[],
            &KwayConfig::default(),
            &mut seeded_rng(5),
            &mut RefineWorkspace::new(),
        );
        mlpart_audit::force_enabled(false);
        assert!(r.passes >= 1);
    }
}
