//! Multi-way (k-way) move-based partitioning: Sanchis-style FM without
//! lookahead, as used by the paper's quadrisection experiments (§III-C).
//!
//! The paper extends its multilevel code to 4-way partitioning using "the
//! quadrisection algorithm of Sanchis \[39\] but without lookahead", with
//! *sum of cluster degrees*, *net cut*, and generic gain computations; its
//! Table IX results use the sum-of-degrees gain. This crate implements the
//! move engine: per-destination gain buckets, k-way balance, pre-assigned
//! (fixed) modules for I/O pads, and pass-with-rollback semantics identical
//! to the 2-way engine.
//!
//! # Examples
//!
//! Quadrisect a ring of four cliques:
//!
//! ```
//! use mlpart_kway::{kway_partition, KwayConfig};
//! use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::with_unit_areas(16);
//! for c in 0..4usize {
//!     for i in 0..4usize {
//!         for j in (i + 1)..4 {
//!             b.add_net([4 * c + i, 4 * c + j])?;
//!         }
//!     }
//!     b.add_net([4 * c + 3, (4 * c + 4) % 16])?; // ring links
//! }
//! let h = b.build()?;
//! let best = (0..8)
//!     .map(|s| {
//!         let mut rng = seeded_rng(s);
//!         kway_partition(&h, 4, None, &[], &KwayConfig::default(), &mut rng).1.cut
//!     })
//!     .min()
//!     .expect("eight runs");
//! assert_eq!(best, 4); // only the ring links are cut
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(feature = "audit")]
pub mod audit;

use mlpart_fm::{BucketPolicy, BudgetMeter, PassStats, RefineState, RefineWorkspace};
use mlpart_hypergraph::rng::MlRng;
use mlpart_hypergraph::{
    metrics, Hypergraph, KwayBalance, ModuleId, PartBounds, PartId, Partition,
};
use std::time::Instant;

/// Which gain computation drives the k-way engine (§III-C lists the paper's
/// three options; Table IX is reported with [`SumOfDegrees`](Self::SumOfDegrees)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KwayGain {
    /// Gain = reduction in `Σ_e (span(e) − 1)`. Moving a module out of a part
    /// where it is a net's lone pin shrinks that net's span; moving into a
    /// part the net does not touch grows it.
    #[default]
    SumOfDegrees,
    /// Gain = reduction in the number of cut nets. A net only scores when the
    /// move makes it entirely contained (or breaks containment), which gives
    /// sparser gradients than sum-of-degrees — the reason the paper prefers
    /// the latter for quadrisection.
    NetCut,
}

impl std::fmt::Display for KwayGain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KwayGain::SumOfDegrees => write!(f, "sum-of-degrees"),
            KwayGain::NetCut => write!(f, "net-cut"),
        }
    }
}

/// Configuration for [`kway_partition`] / [`kway_refine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KwayConfig {
    /// Gain computation (Table IX uses sum-of-degrees).
    pub gain: KwayGain,
    /// Bucket tie-breaking policy; LIFO as in the 2-way engine.
    pub policy: BucketPolicy,
    /// Balance tolerance `r` (generalized §III-B bounds).
    pub balance_r: f64,
    /// Nets with more pins than this are invisible to the engine.
    pub max_net_size: usize,
    /// Safety cap on passes.
    pub max_passes: usize,
}

impl Default for KwayConfig {
    fn default() -> Self {
        KwayConfig {
            gain: KwayGain::SumOfDegrees,
            policy: BucketPolicy::Lifo,
            balance_r: 0.1,
            max_net_size: 200,
            max_passes: 64,
        }
    }
}

/// Outcome of a k-way refinement run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KwayResult {
    /// Final net cut over all nets.
    pub cut: u64,
    /// Final `Σ_e (span(e) − 1)` over all nets.
    pub sum_of_degrees: u64,
    /// Number of passes executed.
    pub passes: usize,
    /// Moves kept after rollback, summed over passes.
    pub kept_moves: u64,
    /// Per-pass instrumentation (objective trajectory, move counts,
    /// bucket-fill time). One entry per executed pass.
    pub pass_stats: Vec<PassStats>,
}

/// Repairs an infeasible k-way partition by moving random non-fixed modules
/// from the most over-full part to the least-full one until the §III-B-style
/// bounds hold (or no move can help). Draws from `rng` only while the
/// partition is infeasible.
///
/// `kway_partition` applies this to random starting solutions: on lumpy
/// area distributions the greedy random split can overfill a part, and
/// refinement alone cannot fix it (its best-prefix rollback may restore the
/// infeasible start).
pub fn rebalance_to_feasibility(
    h: &Hypergraph,
    p: &mut Partition,
    fixed: &[(ModuleId, PartId)],
    balance: &KwayBalance,
    rng: &mut MlRng,
) -> usize {
    use rand::Rng;
    let mut is_fixed = vec![false; h.num_modules()];
    for &(v, _) in fixed {
        is_fixed[v.index()] = true;
    }
    let k = p.k();
    let mut moved = 0usize;
    let mut attempts = 0usize;
    let max_attempts = 4 * h.num_modules() + 16;
    while !balance.is_partition_feasible(p) && attempts < max_attempts {
        attempts += 1;
        let (mut big, mut small) = (0u32, 0u32);
        for part in 1..k {
            if p.part_area(part) > p.part_area(big) {
                big = part;
            }
            if p.part_area(part) < p.part_area(small) {
                small = part;
            }
        }
        if big == small {
            break;
        }
        let v = ModuleId::new(rng.gen_range(0..h.num_modules()));
        if p.part(v) == big && !is_fixed[v.index()] {
            p.move_module(h, v, small);
            moved += 1;
        }
    }
    moved
}

/// [`rebalance_to_feasibility`] generalized to per-part `[lo, hi]` windows:
/// repeatedly moves a random non-fixed module from the part with the worst
/// upper-bound overflow to the part with the worst lower-bound deficit until
/// `bounds` holds (or no move can help). Draws from `rng` only while the
/// partition is infeasible.
///
/// # Panics
///
/// Panics if `bounds` does not have `p.k()` parts.
pub fn rebalance_to_bounds(
    h: &Hypergraph,
    p: &mut Partition,
    fixed: &[(ModuleId, PartId)],
    bounds: &PartBounds,
    rng: &mut MlRng,
) -> usize {
    use rand::Rng;
    let k = p.k();
    assert_eq!(bounds.k(), k, "bounds do not match partition k");
    let mut is_fixed = vec![false; h.num_modules()];
    for &(v, _) in fixed {
        is_fixed[v.index()] = true;
    }
    let mut moved = 0usize;
    let mut attempts = 0usize;
    let max_attempts = 4 * h.num_modules() + 16;
    while !bounds.is_partition_feasible(p) && attempts < max_attempts {
        attempts += 1;
        // Donor: the part furthest above its window (overflow is measured
        // against `hi`, with ties broken by lowest part id); receiver: the
        // part furthest below. Parts already inside their window still
        // donate/receive by the same signed slack when nobody violates.
        let (mut big, mut small) = (0u32, 0u32);
        let slack = |part: u32| p.part_area(part) as i128 - bounds.hi(part) as i128;
        let deficit = |part: u32| bounds.lo(part) as i128 - p.part_area(part) as i128;
        for part in 1..k {
            if slack(part) > slack(big) {
                big = part;
            }
            if deficit(part) > deficit(small) {
                small = part;
            }
        }
        if big == small {
            break;
        }
        let v = ModuleId::new(rng.gen_range(0..h.num_modules()));
        if p.part(v) == big && !is_fixed[v.index()] {
            p.move_module(h, v, small);
            moved += 1;
        }
    }
    moved
}

/// Partitions `h` into `k` parts, starting from `initial` (or a random
/// balanced solution), with `fixed` modules pinned to given parts (the
/// paper's I/O-pad pre-assignment).
///
/// Returns the partition and run statistics.
///
/// # Panics
///
/// Panics if `k == 0`, an initial partition has the wrong `k` or size, or a
/// fixed assignment references an out-of-range module or part.
pub fn kway_partition(
    h: &Hypergraph,
    k: u32,
    initial: Option<Partition>,
    fixed: &[(ModuleId, PartId)],
    cfg: &KwayConfig,
    rng: &mut MlRng,
) -> (Partition, KwayResult) {
    let mut ws = RefineWorkspace::new();
    kway_partition_in(h, k, initial, fixed, cfg, rng, &mut ws)
}

/// [`kway_partition`] with caller-owned scratch: behaves identically but
/// reuses the allocations in `ws` (the quadrisection driver calls this at
/// every level of the V-cycle).
#[allow(clippy::too_many_arguments)]
pub fn kway_partition_in(
    h: &Hypergraph,
    k: u32,
    initial: Option<Partition>,
    fixed: &[(ModuleId, PartId)],
    cfg: &KwayConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> (Partition, KwayResult) {
    kway_partition_budgeted_in(
        h,
        k,
        initial,
        fixed,
        cfg,
        rng,
        ws,
        &mut BudgetMeter::unlimited(),
    )
}

/// [`kway_partition_in`] accounting against a caller-owned [`BudgetMeter`]:
/// when the meter is exhausted no refinement pass runs and the rebalanced
/// starting solution is returned as the best-so-far partition.
#[allow(clippy::too_many_arguments)]
pub fn kway_partition_budgeted_in(
    h: &Hypergraph,
    k: u32,
    initial: Option<Partition>,
    fixed: &[(ModuleId, PartId)],
    cfg: &KwayConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> (Partition, KwayResult) {
    assert!(k > 0, "k must be positive");
    let mut p = match initial {
        Some(p) => {
            assert_eq!(p.k(), k, "initial partition has wrong k");
            assert_eq!(
                p.assignment().len(),
                h.num_modules(),
                "partition does not match hypergraph"
            );
            p
        }
        None => Partition::random(h, k, rng),
    };
    // Pin fixed modules to their parts before refinement begins.
    for &(v, part) in fixed {
        assert!(part < k, "fixed part id out of range");
        p.move_module(h, v, part);
    }
    // A lumpy random start (or the pinning above) can violate the bounds;
    // refinement alone cannot repair that, so fix feasibility first. No-op
    // (and no RNG draws) when the start is already feasible.
    let balance = KwayBalance::new(h, k, cfg.balance_r);
    rebalance_to_feasibility(h, &mut p, fixed, &balance, rng);
    let result = kway_refine_budgeted_in(h, &mut p, fixed, cfg, rng, ws, meter);
    (p, result)
}

/// Refines a k-way partition in place; see [`kway_partition`].
///
/// # Panics
///
/// Panics if `p` does not match `h`.
pub fn kway_refine(
    h: &Hypergraph,
    p: &mut Partition,
    fixed: &[(ModuleId, PartId)],
    cfg: &KwayConfig,
    rng: &mut MlRng,
) -> KwayResult {
    let mut ws = RefineWorkspace::new();
    kway_refine_in(h, p, fixed, cfg, rng, &mut ws)
}

/// The k-way gain of moving `v` to part `to` under `cfg.gain`, computed from
/// the shared state's k-strided pin counts.
fn kway_gain(
    st: &RefineState,
    h: &Hypergraph,
    cfg: &KwayConfig,
    part_of: &[PartId],
    v: ModuleId,
    to: PartId,
) -> i32 {
    let k = st.k as usize;
    let from = part_of[v.index()] as usize;
    let mut g = 0i32;
    for &e in h.nets(v) {
        if !st.visible[e.index()] {
            continue;
        }
        let row = &st.pins_in[e.index() * k..(e.index() + 1) * k];
        let w = h.net_weight(e) as i32;
        match cfg.gain {
            KwayGain::SumOfDegrees => {
                if row[from] == 1 {
                    g += w;
                }
                if row[to as usize] == 0 {
                    g -= w;
                }
            }
            KwayGain::NetCut => {
                let size = h.net_size(e) as u32;
                if row[to as usize] == size - 1 {
                    g += w;
                }
                if row[from] == size {
                    g -= w;
                }
            }
        }
    }
    g
}

/// The engine objective over visible nets: weighted `Σ (span − 1)` for
/// sum-of-degrees, weighted cut for net-cut.
fn kway_objective(st: &RefineState, h: &Hypergraph, cfg: &KwayConfig, p: &Partition) -> u64 {
    match cfg.gain {
        KwayGain::SumOfDegrees => h
            .net_ids()
            .filter(|e| st.visible[e.index()])
            .map(|e| h.net_weight(e) as u64 * (metrics::net_span(h, p, e) as u64).saturating_sub(1))
            .sum(),
        KwayGain::NetCut => metrics::cut_with_net_size_limit(h, p, cfg.max_net_size),
    }
}

/// [`kway_refine`] with caller-owned scratch: bit-identical results, no
/// per-call allocation of the gain/bucket machinery. The shared
/// [`RefineState`] is bound in its k-way shape: `k` per-destination bucket
/// structures and k-strided pin counts.
pub fn kway_refine_in(
    h: &Hypergraph,
    p: &mut Partition,
    fixed: &[(ModuleId, PartId)],
    cfg: &KwayConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> KwayResult {
    kway_refine_budgeted_in(h, p, fixed, cfg, rng, ws, &mut BudgetMeter::unlimited())
}

/// [`kway_refine_in`] with a cooperative budget checkpoint before every
/// pass; mirrors `refine_budgeted_in` in the 2-way engine. A budgeted run
/// executes a prefix of the unbudgeted pass sequence, and each pass keeps
/// its best move prefix, so `p` always holds the best-so-far solution.
#[allow(clippy::too_many_arguments)]
pub fn kway_refine_budgeted_in(
    h: &Hypergraph,
    p: &mut Partition,
    fixed: &[(ModuleId, PartId)],
    cfg: &KwayConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> KwayResult {
    let bounds = PartBounds::from_kway(&KwayBalance::new(h, p.k(), cfg.balance_r));
    kway_refine_constrained_budgeted_in(h, p, fixed, cfg, &bounds, rng, ws, meter)
}

/// [`kway_refine_budgeted_in`] under explicit per-part `[lo, hi]` area
/// windows instead of the uniform ratio-derived bounds. With bounds built
/// via [`PartBounds::from_kway`] from the same tolerance this is
/// byte-identical to the ratio path — the windows then equal the legacy
/// `lower()`/`upper()` pair for every part.
///
/// # Panics
///
/// Panics if `p` does not match `h` or `bounds` does not have `p.k()` parts.
#[allow(clippy::too_many_arguments)]
pub fn kway_refine_constrained_budgeted_in(
    h: &Hypergraph,
    p: &mut Partition,
    fixed: &[(ModuleId, PartId)],
    cfg: &KwayConfig,
    bounds: &PartBounds,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> KwayResult {
    assert_eq!(
        p.assignment().len(),
        h.num_modules(),
        "partition does not match hypergraph"
    );
    let k = p.k();
    assert_eq!(bounds.k(), k, "bounds do not match partition k");
    let st = &mut ws.state;
    let max_vis_weight = st.bind_nets(h, k, cfg.max_net_size);
    assert!(
        max_vis_weight <= i32::MAX as i64 / 4,
        "net weights too large for the bucket structure"
    );
    st.bind_modules(h, k as usize, max_vis_weight as i32, cfg.policy);
    for &(v, _) in fixed {
        st.fixed[v.index()] = true;
    }
    #[cfg(feature = "obs")]
    let _obs_span = mlpart_obs::span(
        "kway_refine",
        &[
            ("k", u64::from(k).into()),
            ("modules", h.num_modules().into()),
        ],
    );

    let mut passes = 0usize;
    let mut kept_moves = 0u64;
    let mut pass_stats = Vec::new();
    while passes < cfg.max_passes {
        if !meter.pass_checkpoint(passes as u32) {
            break;
        }
        passes += 1;
        // --- Reinitialize per-pass state. ---
        let fill_start = Instant::now();
        st.pins_in.fill(0);
        for e in h.net_ids() {
            if !st.visible[e.index()] {
                continue;
            }
            for &v in h.pins(e) {
                st.pins_in[e.index() * k as usize + p.part(v) as usize] += 1;
            }
        }
        st.locked.fill(false);
        st.moves.clear();
        for b in &mut st.buckets {
            b.clear();
        }
        {
            let part_of = p.assignment();
            for v in h.modules() {
                if st.fixed[v.index()] {
                    continue;
                }
                for t in 0..k {
                    if t != part_of[v.index()] {
                        let g = kway_gain(st, h, cfg, part_of, v, t);
                        st.buckets[t as usize].insert(v, g);
                    }
                }
            }
        }
        let fill_time_ns = fill_start.elapsed().as_nanos() as u64;
        // Post-fill gain distribution and total bucket occupancy, sampled
        // only when a trace is recording (the scan re-reads stored keys, so
        // it cannot perturb the pass).
        #[cfg(feature = "obs")]
        let obs_fill = mlpart_obs::recording().then(|| {
            let (mut neg, mut zero, mut pos) = (0u64, 0u64, 0u64);
            let (mut gmin, mut gmax) = (0i64, 0i64);
            let part_of = p.assignment();
            for v in h.modules() {
                if st.fixed[v.index()] {
                    continue;
                }
                for t in 0..k {
                    if t != part_of[v.index()] {
                        let g = i64::from(st.buckets[t as usize].key_of(v));
                        match g.cmp(&0) {
                            std::cmp::Ordering::Less => neg += 1,
                            std::cmp::Ordering::Equal => zero += 1,
                            std::cmp::Ordering::Greater => pos += 1,
                        }
                        gmin = gmin.min(g);
                        gmax = gmax.max(g);
                    }
                }
            }
            let occupancy: u64 = st.buckets.iter().map(|b| b.len() as u64).sum();
            (occupancy, gmin, gmax, neg, zero, pos)
        });
        let start_obj = kway_objective(st, h, cfg, p);
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            mlpart_audit::enforce(
                audit::audit_pass_start(st, h, p, cfg, start_obj).map_err(|e| e.with_pass(passes)),
            );
        }
        let mut obj = start_obj as i64;
        let mut best_obj = obj;
        let mut best_len = 0usize;

        // --- Move loop. ---
        loop {
            // Probe each destination's best feasible candidate; take the max.
            let mut pick: Option<(i32, PartId, ModuleId)> = None;
            for t in 0..k {
                let part_of = p.assignment();
                let areas = h.areas();
                let area_t = p.part_area(t);
                let part_areas = p.part_areas().to_vec();
                let cand = st.buckets[t as usize].select_where(rng, |v| {
                    let a = areas[v.index()];
                    let from = part_of[v.index()];
                    area_t + a <= bounds.hi(t) && part_areas[from as usize] - a >= bounds.lo(from)
                });
                if let Some(v) = cand {
                    let key = st.buckets[t as usize].key_of(v);
                    match pick {
                        Some((bk, _, _)) if bk >= key => {}
                        _ => pick = Some((key, t, v)),
                    }
                }
            }
            let Some((gain, to, v)) = pick else { break };
            let from = p.part(v);
            // Execute the move.
            for b in &mut st.buckets {
                if b.contains(v) {
                    b.remove(v);
                }
            }
            st.locked[v.index()] = true;
            p.move_module(h, v, to);
            obj -= gain as i64;
            st.moves.push((v, from));

            // Update pin counts, then recompute gains of affected neighbors.
            let stamp_val = st.moves.len() as u32;
            for &e in h.nets(v) {
                if !st.visible[e.index()] {
                    continue;
                }
                st.pins_in[e.index() * k as usize + from as usize] -= 1;
                st.pins_in[e.index() * k as usize + to as usize] += 1;
            }
            for &e in h.nets(v) {
                if !st.visible[e.index()] {
                    continue;
                }
                for &w in h.pins(e) {
                    if w == v
                        || st.locked[w.index()]
                        || st.fixed[w.index()]
                        || st.stamp[w.index()] == stamp_val
                    {
                        continue;
                    }
                    st.stamp[w.index()] = stamp_val;
                    let part_of = p.assignment();
                    for t in 0..k {
                        if t != part_of[w.index()] {
                            let g = kway_gain(st, h, cfg, part_of, w, t);
                            st.buckets[t as usize].update_key(w, g);
                        }
                    }
                }
            }
            if obj < best_obj {
                best_obj = obj;
                best_len = st.moves.len();
            }
        }
        // --- Rollback to the best prefix. ---
        let attempted = st.moves.len();
        for &(v, from) in st.moves[best_len..].iter().rev() {
            p.move_module(h, v, from);
        }
        kept_moves += best_len as u64;
        // In audit builds the rollback invariant runs in release too (the
        // debug_assert below is debug-only).
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            mlpart_audit::enforce(
                audit::audit_pass_end(st, h, p, cfg, best_obj).map_err(|e| e.with_pass(passes)),
            );
        }
        debug_assert_eq!(kway_objective(st, h, cfg, p) as i64, best_obj);
        meter.note_pass(attempted as u64);
        pass_stats.push(PassStats {
            cut_before: start_obj,
            cut_after: best_obj as u64,
            attempted_moves: attempted,
            kept_moves: best_len,
            fill_time_ns,
        });
        #[cfg(feature = "obs")]
        if let Some((occupancy, gmin, gmax, neg, zero, pos)) = obs_fill {
            mlpart_obs::counter(
                "kway_pass",
                &[
                    ("pass", (passes as u64 - 1).into()),
                    ("cut_before", start_obj.into()),
                    ("cut_after", (best_obj as u64).into()),
                    ("attempted", (attempted as u64).into()),
                    ("kept", (best_len as u64).into()),
                    ("rolled_back", ((attempted - best_len) as u64).into()),
                    ("bucket_occupancy", occupancy.into()),
                    ("gain_min", gmin.into()),
                    ("gain_max", gmax.into()),
                    ("gain_neg", neg.into()),
                    ("gain_zero", zero.into()),
                    ("gain_pos", pos.into()),
                ],
            );
        }
        if best_obj >= start_obj as i64 {
            break;
        }
        // Stamps are per-move within a pass; reset between passes so the
        // move counter can restart at 1.
        st.stamp.fill(u32::MAX);
    }

    KwayResult {
        cut: metrics::cut(h, p),
        sum_of_degrees: metrics::sum_of_spans_minus_one(h, p),
        passes,
        kept_moves,
        pass_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    /// Four 4-cliques in a ring: optimal quadrisection cuts the 4 ring nets.
    fn ring_of_cliques() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(16);
        for c in 0..4usize {
            for i in 0..4usize {
                for j in (i + 1)..4 {
                    b.add_net([4 * c + i, 4 * c + j]).unwrap();
                }
            }
            b.add_net([4 * c + 3, (4 * c + 4) % 16]).unwrap();
        }
        b.build().unwrap()
    }

    fn best_of<F: FnMut(u64) -> u64>(runs: u64, f: F) -> u64 {
        (0..runs).map(f).min().unwrap()
    }

    #[test]
    fn quadrisection_finds_ring_optimum_sod() {
        let h = ring_of_cliques();
        let cfg = KwayConfig::default();
        let best = best_of(10, |s| {
            let mut rng = seeded_rng(s);
            kway_partition(&h, 4, None, &[], &cfg, &mut rng).1.cut
        });
        assert_eq!(best, 4);
    }

    #[test]
    fn quadrisection_finds_ring_optimum_netcut() {
        let h = ring_of_cliques();
        let cfg = KwayConfig {
            gain: KwayGain::NetCut,
            ..KwayConfig::default()
        };
        let best = best_of(10, |s| {
            let mut rng = seeded_rng(100 + s);
            kway_partition(&h, 4, None, &[], &cfg, &mut rng).1.cut
        });
        assert_eq!(best, 4);
    }

    #[test]
    fn respects_kway_balance() {
        let h = ring_of_cliques();
        let cfg = KwayConfig::default();
        let bal = KwayBalance::new(&h, 4, cfg.balance_r);
        for seed in 0..5 {
            let mut rng = seeded_rng(seed);
            let (p, _) = kway_partition(&h, 4, None, &[], &cfg, &mut rng);
            assert!(
                bal.is_partition_feasible(&p),
                "seed {seed}: {:?}",
                p.part_areas()
            );
            assert!(p.validate(&h));
        }
    }

    #[test]
    fn k2_matches_bipartition_semantics() {
        // k=2 net-cut engine should find the dumbbell optimum.
        let mut b = HypergraphBuilder::with_unit_areas(8);
        for i in 0..4usize {
            for j in (i + 1)..4 {
                b.add_net([i, j]).unwrap();
                b.add_net([i + 4, j + 4]).unwrap();
            }
        }
        b.add_net([3, 4]).unwrap();
        let h = b.build().unwrap();
        let cfg = KwayConfig {
            gain: KwayGain::NetCut,
            ..KwayConfig::default()
        };
        let best = best_of(8, |s| {
            let mut rng = seeded_rng(s);
            kway_partition(&h, 2, None, &[], &cfg, &mut rng).1.cut
        });
        assert_eq!(best, 1);
    }

    #[test]
    fn fixed_modules_never_move() {
        let h = ring_of_cliques();
        let cfg = KwayConfig::default();
        let fixed: Vec<(ModuleId, PartId)> = vec![(ModuleId::new(0), 3), (ModuleId::new(5), 2)];
        for seed in 0..5 {
            let mut rng = seeded_rng(seed);
            let (p, _) = kway_partition(&h, 4, None, &fixed, &cfg, &mut rng);
            assert_eq!(p.part(ModuleId::new(0)), 3);
            assert_eq!(p.part(ModuleId::new(5)), 2);
        }
    }

    #[test]
    fn refine_never_worsens_objective() {
        let h = ring_of_cliques();
        let cfg = KwayConfig::default();
        let mut rng = seeded_rng(11);
        let p0 = Partition::random(&h, 4, &mut rng);
        let start_sod = metrics::sum_of_spans_minus_one(&h, &p0);
        let mut p = p0;
        let r = kway_refine(&h, &mut p, &[], &cfg, &mut rng);
        assert!(r.sum_of_degrees <= start_sod);
        assert_eq!(r.cut, metrics::cut(&h, &p));
        assert_eq!(r.sum_of_degrees, metrics::sum_of_spans_minus_one(&h, &p));
    }

    #[test]
    fn result_statistics_consistent() {
        let h = ring_of_cliques();
        let mut rng = seeded_rng(13);
        let (p, r) = kway_partition(&h, 4, None, &[], &KwayConfig::default(), &mut rng);
        assert!(r.passes >= 1);
        assert!(r.cut <= r.sum_of_degrees);
        assert!(p.validate(&h));
    }

    #[test]
    fn deterministic_given_seed() {
        let h = ring_of_cliques();
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            kway_partition(&h, 4, None, &[], &KwayConfig::default(), &mut rng)
        };
        let (p1, r1) = run(21);
        let (p2, r2) = run(21);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        let h = ring_of_cliques();
        let mut rng = seeded_rng(0);
        let _ = kway_partition(&h, 0, None, &[], &KwayConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "fixed part id out of range")]
    fn rejects_bad_fixed_part() {
        let h = ring_of_cliques();
        let mut rng = seeded_rng(0);
        let _ = kway_partition(
            &h,
            4,
            None,
            &[(ModuleId::new(0), 9)],
            &KwayConfig::default(),
            &mut rng,
        );
    }

    #[test]
    fn trivial_inputs() {
        let h = HypergraphBuilder::with_unit_areas(3).build().unwrap();
        let mut rng = seeded_rng(0);
        let (p, r) = kway_partition(&h, 4, None, &[], &KwayConfig::default(), &mut rng);
        assert_eq!(r.cut, 0);
        assert!(p.validate(&h));
    }

    #[test]
    fn constrained_with_legacy_bounds_is_byte_identical() {
        let h = ring_of_cliques();
        let cfg = KwayConfig::default();
        for seed in 0..5 {
            let p0 = Partition::random(&h, 4, &mut seeded_rng(500 + seed));
            let bounds = PartBounds::from_kway(&KwayBalance::new(&h, 4, cfg.balance_r));
            let mut p_legacy = p0.clone();
            let mut p_new = p0.clone();
            let r_legacy = kway_refine(&h, &mut p_legacy, &[], &cfg, &mut seeded_rng(seed));
            let r_new = kway_refine_constrained_budgeted_in(
                &h,
                &mut p_new,
                &[],
                &cfg,
                &bounds,
                &mut seeded_rng(seed),
                &mut RefineWorkspace::new(),
                &mut BudgetMeter::unlimited(),
            );
            assert_eq!(p_legacy.assignment(), p_new.assignment(), "seed {seed}");
            assert_eq!(r_legacy, r_new, "seed {seed}");
        }
    }

    #[test]
    fn asymmetric_windows_are_respected() {
        let h = ring_of_cliques();
        let cfg = KwayConfig::default();
        // Part 0 must stay small (≤ 3), part 3 must stay large (≥ 5).
        let bounds = PartBounds::new(vec![1, 1, 1, 5], vec![3, 8, 8, 8]);
        for seed in 0..5 {
            let mut p = Partition::random(&h, 4, &mut seeded_rng(seed));
            rebalance_to_bounds(&h, &mut p, &[], &bounds, &mut seeded_rng(777 + seed));
            if !bounds.is_partition_feasible(&p) {
                continue; // random repair can stall; skip this seed
            }
            let _ = kway_refine_constrained_budgeted_in(
                &h,
                &mut p,
                &[],
                &cfg,
                &bounds,
                &mut seeded_rng(seed),
                &mut RefineWorkspace::new(),
                &mut BudgetMeter::unlimited(),
            );
            assert!(
                bounds.is_partition_feasible(&p),
                "seed {seed}: {:?}",
                p.part_areas()
            );
        }
    }

    #[test]
    fn rebalance_to_bounds_repairs_overflow() {
        let h = ring_of_cliques();
        // Everything crammed into part 0.
        let mut p = Partition::from_assignment(&h, 4, vec![0; 16]).unwrap();
        let bounds = PartBounds::uniform(4, 2, 6);
        let mut rng = seeded_rng(5);
        let moved = rebalance_to_bounds(&h, &mut p, &[], &bounds, &mut rng);
        assert!(moved > 0);
        assert!(bounds.is_partition_feasible(&p), "{:?}", p.part_areas());
        assert!(p.validate(&h));
    }

    #[test]
    fn rebalance_to_bounds_feasible_start_draws_no_rng() {
        let h = ring_of_cliques();
        let mut p =
            Partition::from_assignment(&h, 4, (0..16).map(|i| (i / 4) as u32).collect()).unwrap();
        let bounds = PartBounds::uniform(4, 2, 6);
        let mut rng = seeded_rng(5);
        let moved = rebalance_to_bounds(&h, &mut p, &[], &bounds, &mut rng);
        assert_eq!(moved, 0);
        // The stream is untouched: a fresh rng from the same seed agrees.
        use rand::Rng;
        let mut fresh = seeded_rng(5);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>());
    }

    #[test]
    fn large_nets_ignored_but_counted() {
        let mut b = HypergraphBuilder::with_unit_areas(8);
        b.add_net(0..8).unwrap(); // 8-pin net invisible when limit = 4
        b.add_net([0, 1]).unwrap();
        b.add_net([2, 3]).unwrap();
        let h = b.build().unwrap();
        let cfg = KwayConfig {
            max_net_size: 4,
            ..KwayConfig::default()
        };
        let mut rng = seeded_rng(2);
        let (p, r) = kway_partition(&h, 4, None, &[], &cfg, &mut rng);
        assert_eq!(r.cut, metrics::cut(&h, &p));
        assert!(r.cut >= 1, "the 8-pin net must be cut across 4 parts");
    }
}
