//! Property-based tests for the k-way engine: refinement never worsens the
//! configured objective, balance and fixed modules are always respected,
//! and reported statistics match independent recomputation.

use mlpart_fm::RefineWorkspace;
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::{metrics, Hypergraph, HypergraphBuilder, KwayBalance, ModuleId, Partition};
use mlpart_kway::{kway_partition, kway_refine, kway_refine_in, KwayConfig, KwayGain};
use proptest::prelude::*;

fn arb_netlist() -> impl Strategy<Value = (Vec<u64>, Vec<Vec<usize>>)> {
    (4usize..32).prop_flat_map(|n| {
        let areas = proptest::collection::vec(1u64..4, n);
        let nets = proptest::collection::vec(proptest::collection::vec(0usize..n, 2..6), 1..40);
        (areas, nets)
    })
}

fn build(areas: Vec<u64>, nets: &[Vec<usize>]) -> Hypergraph {
    let mut b = HypergraphBuilder::new(areas);
    for net in nets {
        b.add_net(net.iter().copied()).expect("in range");
    }
    b.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn refinement_never_worsens_objective(
        (areas, nets) in arb_netlist(),
        k in 2u32..5,
        sod in any::<bool>(),
        seed in 0u64..500,
    ) {
        let h = build(areas, &nets);
        let cfg = KwayConfig {
            gain: if sod { KwayGain::SumOfDegrees } else { KwayGain::NetCut },
            ..KwayConfig::default()
        };
        let mut rng = seeded_rng(seed);
        let p0 = Partition::random(&h, k, &mut rng);
        let balance = KwayBalance::new(&h, k, cfg.balance_r);
        prop_assume!(balance.is_partition_feasible(&p0));
        let start = match cfg.gain {
            KwayGain::SumOfDegrees => metrics::sum_of_spans_minus_one(&h, &p0),
            KwayGain::NetCut => metrics::cut(&h, &p0),
        };
        let mut p = p0;
        let r = kway_refine(&h, &mut p, &[], &cfg, &mut rng);
        let end = match cfg.gain {
            KwayGain::SumOfDegrees => r.sum_of_degrees,
            KwayGain::NetCut => r.cut,
        };
        prop_assert!(end <= start, "objective worsened: {start} -> {end}");
        prop_assert!(balance.is_partition_feasible(&p));
        prop_assert!(p.validate(&h));
        prop_assert_eq!(r.cut, metrics::cut(&h, &p));
        prop_assert_eq!(r.sum_of_degrees, metrics::sum_of_spans_minus_one(&h, &p));
    }

    #[test]
    fn fixed_modules_are_pinned(
        (areas, nets) in arb_netlist(),
        seed in 0u64..500,
        fixed_picks in proptest::collection::vec((0usize..32, 0u32..4), 0..4),
    ) {
        let h = build(areas, &nets);
        let n = h.num_modules();
        // Deduplicate fixed modules (a module can only be pinned once).
        let mut seen = std::collections::HashSet::new();
        let fixed: Vec<(ModuleId, u32)> = fixed_picks
            .into_iter()
            .map(|(vi, part)| (ModuleId::new(vi % n), part))
            .filter(|&(v, _)| seen.insert(v))
            .collect();
        let mut rng = seeded_rng(seed);
        let (p, _) = kway_partition(&h, 4, None, &fixed, &KwayConfig::default(), &mut rng);
        for &(v, part) in &fixed {
            prop_assert_eq!(p.part(v), part);
        }
        prop_assert!(p.validate(&h));
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh_allocation(
        (areas, nets) in arb_netlist(),
        k in 2u32..5,
        sod in any::<bool>(),
        seed in 0u64..500,
    ) {
        // `kway_refine` now runs on the shared `RefineState` from
        // `mlpart_fm`; a dirtied, reused workspace must reproduce the
        // throwaway-workspace wrapper bit for bit — same assignment, same
        // result, same per-pass statistics.
        let h = build(areas, &nets);
        let cfg = KwayConfig {
            gain: if sod { KwayGain::SumOfDegrees } else { KwayGain::NetCut },
            ..KwayConfig::default()
        };
        let mut ws = RefineWorkspace::new();
        // Dirty the workspace on an unrelated problem (different k too).
        {
            let dirty = build(vec![1, 1, 2, 3], &[vec![0, 1, 2], vec![2, 3]]);
            let mut rng = seeded_rng(seed ^ 0xbeef);
            let mut dp = Partition::random(&dirty, 2, &mut rng);
            let _ = kway_refine_in(&dirty, &mut dp, &[], &cfg, &mut rng, &mut ws);
        }

        let mut rng = seeded_rng(seed);
        let p0 = Partition::random(&h, k, &mut rng);
        let mut p_fresh = p0.clone();
        let mut p_reuse = p0;
        let mut rng1 = seeded_rng(seed);
        let r_fresh = kway_refine(&h, &mut p_fresh, &[], &cfg, &mut rng1);
        let mut rng2 = seeded_rng(seed);
        let r_reuse = kway_refine_in(&h, &mut p_reuse, &[], &cfg, &mut rng2, &mut ws);
        prop_assert_eq!(p_fresh.assignment(), p_reuse.assignment());
        prop_assert_eq!(&r_fresh, &r_reuse);
        prop_assert_eq!(&r_fresh.pass_stats, &r_reuse.pass_stats);
    }

    #[test]
    fn deterministic_across_identical_runs(
        (areas, nets) in arb_netlist(),
        seed in 0u64..100,
    ) {
        let h = build(areas, &nets);
        let run = |s| {
            let mut rng = seeded_rng(s);
            kway_partition(&h, 3, None, &[], &KwayConfig::default(), &mut rng)
        };
        let (p1, r1) = run(seed);
        let (p2, r2) = run(seed);
        prop_assert_eq!(p1.assignment(), p2.assignment());
        prop_assert_eq!(r1, r2);
    }
}
