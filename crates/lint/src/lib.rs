//! Determinism lint for the mlpart workspace.
//!
//! The partitioner's headline contract is bit-exact reproducibility: the
//! same `(netlist, config, seed)` must produce the same partition on every
//! machine, thread count, and run. Four classes of source constructs can
//! silently break that contract, so this crate denies them in every
//! algorithm crate:
//!
//! * **`default-hasher`** — `std::collections::HashMap`/`HashSet` seed
//!   their hasher per-process, so iteration order (and anything derived
//!   from it) varies between runs. Use `BTreeMap`/`BTreeSet` or
//!   sort-then-dedup instead.
//! * **`entropy-rng`** — `thread_rng()` / `SeedableRng::from_entropy()`
//!   pull operating-system entropy; all randomness must flow from the
//!   caller's seed through `mlpart_hypergraph::rng`.
//! * **`wall-clock`** — `std::time::Instant` / `SystemTime` reads are fine
//!   for telemetry but poison results if they leak into algorithm
//!   decisions; only the whitelisted timing sites may touch them.
//! * **`id-truncation`** — truncating casts on id-sized integers
//!   (`as u8`/`as u16`, `.len() as u32`, `.index() as u32`) silently wrap
//!   on large netlists instead of failing loudly.
//!
//! Known-legitimate sites are declared in `lint-allow.txt` at the
//! workspace root, one `check path-prefix` pair per line. The lint is run
//! by `cargo run -p mlpart-lint`, which exits nonzero on any finding not
//! covered by the allowlist.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// In-workspace stand-in crates (vendored API shims, not algorithm code)
/// and this crate itself — excluded from scanning.
const SKIP_CRATES: &[&str] = &["rand", "proptest", "criterion", "lint"];

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes, e.g.
    /// `crates/fm/src/engine.rs`.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// The violated rule: `default-hasher`, `entropy-rng`, `wall-clock`,
    /// or `id-truncation`.
    pub check: &'static str,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.check, self.snippet
        )
    }
}

/// One allowlist entry: findings of `check` under `path_prefix` are
/// accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule being allowed.
    pub check: String,
    /// Workspace-relative path prefix the exemption covers.
    pub path_prefix: String,
}

/// Parses `lint-allow.txt` content: one `check path-prefix` pair per line,
/// `#` starts a comment, blank lines ignored.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        if let (Some(check), Some(prefix)) = (it.next(), it.next()) {
            entries.push(AllowEntry {
                check: check.to_string(),
                path_prefix: prefix.to_string(),
            });
        }
    }
    entries
}

/// True when `f` is covered by some allowlist entry (same check, file
/// under the entry's path prefix).
pub fn is_allowed(f: &Finding, allow: &[AllowEntry]) -> bool {
    allow
        .iter()
        .any(|a| a.check == f.check && f.file.starts_with(&a.path_prefix))
}

/// Strips `//` line comments and `/* ... */` block comments, preserving
/// line structure so findings keep their line numbers. String literals are
/// respected (a `//` inside a string does not start a comment).
fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut in_block = 0usize;
    let mut in_str = false;
    let mut in_char = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let next = if i + 1 < bytes.len() {
            Some(bytes[i + 1] as char)
        } else {
            None
        };
        if in_block > 0 {
            if c == '*' && next == Some('/') {
                in_block -= 1;
                i += 2;
                continue;
            }
            if c == '/' && next == Some('*') {
                in_block += 1;
                i += 2;
                continue;
            }
            if c == '\n' {
                out.push('\n');
            }
            i += 1;
            continue;
        }
        if in_str {
            out.push(c);
            if c == '\\' {
                if let Some(n) = next {
                    out.push(n);
                    i += 2;
                    continue;
                }
            } else if c == '"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        if in_char {
            out.push(c);
            if c == '\\' {
                if let Some(n) = next {
                    out.push(n);
                    i += 2;
                    continue;
                }
            } else if c == '\'' {
                in_char = false;
            }
            i += 1;
            continue;
        }
        match c {
            '/' if next == Some('/') => {
                // Line comment: drop to end of line.
                while i < bytes.len() && bytes[i] as char != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                in_block = 1;
                i += 2;
            }
            '"' => {
                in_str = true;
                out.push(c);
                i += 1;
            }
            '\'' => {
                // Only treat as a char literal when it looks like one
                // (avoids lifetimes: `'a`, `'static`).
                let looks_like_char =
                    bytes.get(i + 2).is_some_and(|&b| b as char == '\'') || next == Some('\\');
                if looks_like_char {
                    in_char = true;
                }
                out.push(c);
                i += 1;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// True when `hay` contains `needle` not followed by an identifier
/// character (so ` as u8` does not match ` as u8something`).
fn contains_token(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let end = start + pos + needle.len();
        let boundary = hay[end..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        start = end;
    }
    false
}

/// Scans one source text and returns every rule violation, comment text
/// excluded. `file` is the workspace-relative label stamped on findings.
pub fn lint_source(file: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let stripped = strip_comments(text);
    for (idx, (line, raw)) in stripped.lines().zip(text.lines()).enumerate() {
        let mut hit = |check: &'static str| {
            findings.push(Finding {
                file: file.to_string(),
                line: idx + 1,
                check,
                snippet: raw.trim().to_string(),
            });
        };
        if contains_token(line, "HashMap") || contains_token(line, "HashSet") {
            hit("default-hasher");
        }
        if contains_token(line, "thread_rng") || contains_token(line, "from_entropy") {
            hit("entropy-rng");
        }
        if contains_token(line, "Instant") || contains_token(line, "SystemTime") {
            hit("wall-clock");
        }
        if contains_token(line, "as u8")
            || contains_token(line, "as u16")
            || contains_token(line, ".len() as u32")
            || contains_token(line, ".index() as u32")
        {
            hit("id-truncation");
        }
    }
    findings
}

/// Collects the `.rs` files under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every algorithm crate's `src/` tree plus the facade's root
/// `src/`, returning all findings (allowlist not yet applied).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?.collect::<io::Result<_>>()?;
    crate_dirs.sort_by_key(|e| e.path());
    for entry in crate_dirs {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !path.is_dir() || SKIP_CRATES.contains(&name.as_ref()) {
            continue;
        }
        let src = path.join("src");
        if src.is_dir() {
            rust_files(&src, &mut files)?;
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        rust_files(&facade_src, &mut files)?;
    }

    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &text));
    }
    Ok(findings)
}

/// Loads the allowlist (if present) and lints the workspace. Returns the
/// surviving findings and the number suppressed by the allowlist.
pub fn run(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let allow = match fs::read_to_string(root.join("lint-allow.txt")) {
        Ok(text) => parse_allowlist(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let all = lint_workspace(root)?;
    let total = all.len();
    let kept: Vec<Finding> = all.into_iter().filter(|f| !is_allowed(f, &allow)).collect();
    let suppressed = total - kept.len();
    Ok((kept, suppressed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_default_hasher() {
        let src = "use std::collections::HashMap;\nlet m: HashMap<u32, u64> = HashMap::new();\n";
        let f = lint_source("x.rs", src);
        assert!(f.iter().all(|f| f.check == "default-hasher"));
        assert_eq!(f[0].line, 1);
        assert!(f.len() >= 2);
    }

    #[test]
    fn flags_hash_set() {
        let f = lint_source("x.rs", "let s = std::collections::HashSet::<u32>::new();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].check, "default-hasher");
    }

    #[test]
    fn flags_entropy_rng() {
        let src = "let mut rng = rand::thread_rng();\nlet r = SmallRng::from_entropy();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.check == "entropy-rng"));
    }

    #[test]
    fn flags_wall_clock() {
        let src = "let t = std::time::Instant::now();\nlet s = SystemTime::now();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.check == "wall-clock"));
    }

    #[test]
    fn flags_truncating_casts() {
        let src = "let a = x as u8;\nlet b = y as u16;\nlet c = v.len() as u32;\nlet d = m.index() as u32;\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|f| f.check == "id-truncation"));
    }

    #[test]
    fn widening_casts_are_fine() {
        let src = "let a = x as u64;\nlet b = y as usize;\nlet c = z as u32;\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn comments_do_not_trip_checks() {
        let src = "// a HashMap would be nondeterministic here\n/* thread_rng();\n   Instant::now(); */\nlet x = 1; // as u8\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn string_literals_do_not_hide_code() {
        // `//` inside a string must not comment out the rest of the line.
        let src = "let s = \"//\"; let t = std::time::Instant::now();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].check, "wall-clock");
    }

    #[test]
    fn line_numbers_survive_block_comments() {
        let src = "/* line 1\n   line 2 */\nlet t = Instant::now();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allowlist_parsing_and_matching() {
        let allow = parse_allowlist(
            "# comment\n\nwall-clock crates/exec/src/lib.rs # telemetry\nid-truncation crates/kway/src/\n",
        );
        assert_eq!(allow.len(), 2);
        let f = Finding {
            file: "crates/exec/src/lib.rs".into(),
            line: 1,
            check: "wall-clock",
            snippet: String::new(),
        };
        assert!(is_allowed(&f, &allow));
        let g = Finding {
            check: "default-hasher",
            ..f.clone()
        };
        assert!(!is_allowed(&g, &allow));
        let h = Finding {
            file: "crates/kway/src/lib.rs".into(),
            check: "id-truncation",
            ..f
        };
        assert!(is_allowed(&h, &allow));
    }

    /// The seeded fixture contains every banned pattern exactly once per
    /// class; each must be reported.
    #[test]
    fn fixture_trips_every_check() {
        let text = include_str!("../fixtures/banned.rs.fixture");
        let f = lint_source("fixtures/banned.rs", text);
        for check in [
            "default-hasher",
            "entropy-rng",
            "wall-clock",
            "id-truncation",
        ] {
            assert!(
                f.iter().any(|f| f.check == check),
                "{check} not reported: {f:?}"
            );
        }
    }

    /// The real workspace must scan clean under its committed allowlist —
    /// the acceptance gate `cargo run -p mlpart-lint` enforces in CI.
    #[test]
    fn workspace_is_clean_under_allowlist() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let (kept, suppressed) = run(&root).expect("lint scan");
        assert!(
            kept.is_empty(),
            "determinism lint findings:\n{}",
            kept.iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // The allowlist is load-bearing: the timing telemetry sites exist.
        assert!(suppressed > 0, "expected allowlisted telemetry sites");
    }

    /// The observability crate funnels every monotonic-clock read through
    /// `clock.rs`; the allowlist entry is that single file, not a crate-wide
    /// blanket, so a stray `Instant` anywhere else in `mlpart-obs` fails the
    /// lint. This test pins both halves of that contract.
    #[test]
    fn obs_clock_reads_are_confined_to_clock_rs() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_workspace(&root).expect("lint scan");
        let obs_wall: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.check == "wall-clock" && f.file.starts_with("crates/obs/"))
            .collect();
        assert!(
            !obs_wall.is_empty(),
            "expected the obs clock site to be scanned, not skipped"
        );
        assert!(
            obs_wall.iter().all(|f| f.file == "crates/obs/src/clock.rs"),
            "obs clock reads outside clock.rs: {obs_wall:?}"
        );
        let allow_text = fs::read_to_string(root.join("lint-allow.txt")).expect("allowlist exists");
        let obs_entries: Vec<AllowEntry> = parse_allowlist(&allow_text)
            .into_iter()
            .filter(|a| a.path_prefix.starts_with("crates/obs"))
            .collect();
        assert_eq!(
            obs_entries,
            vec![AllowEntry {
                check: "wall-clock".into(),
                path_prefix: "crates/obs/src/clock.rs".into(),
            }],
            "the obs exemption must stay a single-file wall-clock entry"
        );
    }
}
