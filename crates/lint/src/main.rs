//! `mlpart-lint`: denies determinism hazards in the algorithm crates.
//!
//! Usage: `cargo run -p mlpart-lint` (from anywhere in the workspace).
//! Exits 0 when the tree is clean under `lint-allow.txt`, 1 otherwise.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // The crate sits at `<workspace>/crates/lint`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (kept, suppressed) = match mlpart_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mlpart-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if kept.is_empty() {
        println!("mlpart-lint: clean ({suppressed} allowlisted site(s))");
        return ExitCode::SUCCESS;
    }
    for f in &kept {
        println!("{f}");
    }
    println!(
        "mlpart-lint: {} finding(s); fix them or add `check path-prefix` lines to lint-allow.txt",
        kept.len()
    );
    ExitCode::FAILURE
}
