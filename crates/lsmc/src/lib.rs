//! The Large-Step Markov Chain (LSMC) partitioning baseline.
//!
//! Fukunaga, Huang, and Kahng's LSMC generates new solutions by making big
//! "kick" jumps from low-cost local minima, then descends back to a local
//! minimum with FM. The paper reimplements it for Tables VII/IX: "results are
//! reported for 100 descents, with the kick move performed on the best
//! partitioning solution observed so far (temperature = 0 in the LSMC
//! algorithm)" — i.e. a kick is only ever applied to the incumbent.
//!
//! Both the 2-way variant (Table VII column `LSMC`) and the 4-way variants
//! with FM and CLIP descent engines (Table IX columns `LSMC_F`, `LSMC_C`)
//! are provided.
//!
//! # Examples
//!
//! ```
//! use mlpart_lsmc::{lsmc_bipartition, LsmcConfig};
//! use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::with_unit_areas(16);
//! for i in 0..8usize {
//!     for j in (i + 1)..8 {
//!         b.add_net([i, j])?;
//!         b.add_net([i + 8, j + 8])?;
//!     }
//! }
//! b.add_net([7, 8])?;
//! let h = b.build()?;
//! let cfg = LsmcConfig { descents: 10, ..LsmcConfig::default() };
//! let mut rng = seeded_rng(1);
//! let (p, r) = lsmc_bipartition(&h, &cfg, &mut rng);
//! assert_eq!(r.cut, 1);
//! assert_eq!(p.k(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use mlpart_fm::{fm_partition, refine, FmConfig};
use mlpart_hypergraph::rng::MlRng;
use mlpart_hypergraph::{metrics, Hypergraph, ModuleId, Partition};
use mlpart_kway::{kway_refine, KwayConfig};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`lsmc_bipartition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsmcConfig {
    /// Number of FM descents (the paper uses 100).
    pub descents: usize,
    /// Fraction of the modules perturbed by one kick move.
    pub kick_fraction: f64,
    /// Descent engine (FM by default; set `engine: Clip` for a CLIP chain).
    pub fm: FmConfig,
}

impl Default for LsmcConfig {
    fn default() -> Self {
        LsmcConfig {
            descents: 100,
            kick_fraction: 0.05,
            fm: FmConfig::default(),
        }
    }
}

/// Outcome of an LSMC run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmcResult {
    /// Best cut observed across all descents.
    pub cut: u64,
    /// Descents executed.
    pub descents: usize,
    /// Descents that improved the incumbent.
    pub improvements: usize,
}

/// Kick move for bipartitions: swap equal-sized random module subsets
/// between the two sides, preserving module-count balance (areas are
/// re-checked by the subsequent FM descent, which only makes feasible moves
/// and rolls back to a feasible prefix).
fn kick_bipartition<R: Rng + ?Sized>(
    h: &Hypergraph,
    p: &mut Partition,
    fraction: f64,
    rng: &mut R,
) {
    let n = h.num_modules();
    let swap = ((fraction * n as f64).ceil() as usize).max(1);
    let mut side0: Vec<u32> = Vec::new();
    let mut side1: Vec<u32> = Vec::new();
    for (i, &part) in p.assignment().iter().enumerate() {
        if part == 0 {
            side0.push(i as u32);
        } else {
            side1.push(i as u32);
        }
    }
    side0.shuffle(rng);
    side1.shuffle(rng);
    for &v in side0.iter().take(swap) {
        p.move_module(h, ModuleId::from(v), 1);
    }
    for &v in side1.iter().take(swap) {
        p.move_module(h, ModuleId::from(v), 0);
    }
}

/// Runs the 2-way LSMC chain: random start, FM descent, then
/// `descents − 1` iterations of kick-the-incumbent + FM descent.
///
/// Returns the best partition observed and run statistics.
///
/// # Panics
///
/// Panics if `cfg.descents == 0`.
pub fn lsmc_bipartition(
    h: &Hypergraph,
    cfg: &LsmcConfig,
    rng: &mut MlRng,
) -> (Partition, LsmcResult) {
    assert!(cfg.descents >= 1, "need at least one descent");
    let (mut best_p, r0) = fm_partition(h, None, &cfg.fm, rng);
    let mut best_cut = r0.cut;
    let mut improvements = 0usize;
    for _ in 1..cfg.descents {
        // Temperature 0: always kick the best solution seen so far.
        let mut p = best_p.clone();
        kick_bipartition(h, &mut p, cfg.kick_fraction, rng);
        let r = refine(h, &mut p, &cfg.fm, rng);
        if r.cut < best_cut {
            best_cut = r.cut;
            best_p = p;
            improvements += 1;
        }
    }
    debug_assert_eq!(best_cut, metrics::cut(h, &best_p));
    (
        best_p,
        LsmcResult {
            cut: best_cut,
            descents: cfg.descents,
            improvements,
        },
    )
}

/// Configuration for [`lsmc_kway`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsmcKwayConfig {
    /// Number of descents.
    pub descents: usize,
    /// Fraction of the modules perturbed by one kick move.
    pub kick_fraction: f64,
    /// K-way descent engine settings.
    pub kway: KwayConfig,
}

impl Default for LsmcKwayConfig {
    fn default() -> Self {
        LsmcKwayConfig {
            descents: 100,
            kick_fraction: 0.05,
            kway: KwayConfig::default(),
        }
    }
}

/// Kick for k-way partitions: reassign a random module subset to uniformly
/// random parts.
fn kick_kway<R: Rng + ?Sized>(h: &Hypergraph, p: &mut Partition, fraction: f64, rng: &mut R) {
    let n = h.num_modules();
    let k = p.k();
    let kicks = ((fraction * n as f64).ceil() as usize).max(1);
    for _ in 0..kicks {
        let v = ModuleId::new(rng.gen_range(0..n));
        let to = rng.gen_range(0..k);
        p.move_module(h, v, to);
    }
}

/// Runs the k-way LSMC chain with the Sanchis-style engine as the descent
/// operator (Table IX's `LSMC_F`/`LSMC_C` analogues).
///
/// Returns the best partition observed and run statistics.
///
/// # Panics
///
/// Panics if `k == 0` or `cfg.descents == 0`.
pub fn lsmc_kway(
    h: &Hypergraph,
    k: u32,
    cfg: &LsmcKwayConfig,
    rng: &mut MlRng,
) -> (Partition, LsmcResult) {
    assert!(k > 0, "k must be positive");
    assert!(cfg.descents >= 1, "need at least one descent");
    let mut best_p = Partition::random(h, k, rng);
    let balance = mlpart_hypergraph::KwayBalance::new(h, k, cfg.kway.balance_r);
    mlpart_kway::rebalance_to_feasibility(h, &mut best_p, &[], &balance, rng);
    let r0 = kway_refine(h, &mut best_p, &[], &cfg.kway, rng);
    let mut best_cut = r0.cut;
    let mut improvements = 0usize;
    for _ in 1..cfg.descents {
        let mut p = best_p.clone();
        kick_kway(h, &mut p, cfg.kick_fraction, rng);
        let r = kway_refine(h, &mut p, &[], &cfg.kway, rng);
        if r.cut < best_cut {
            best_cut = r.cut;
            best_p = p;
            improvements += 1;
        }
    }
    (
        best_p,
        LsmcResult {
            cut: best_cut,
            descents: cfg.descents,
            improvements,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn dumbbell() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(16);
        for i in 0..8usize {
            for j in (i + 1)..8 {
                b.add_net([i, j]).unwrap();
                b.add_net([i + 8, j + 8]).unwrap();
            }
        }
        b.add_net([7, 8]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_dumbbell_optimum() {
        let h = dumbbell();
        let cfg = LsmcConfig {
            descents: 20,
            ..LsmcConfig::default()
        };
        let mut rng = seeded_rng(3);
        let (_, r) = lsmc_bipartition(&h, &cfg, &mut rng);
        assert_eq!(r.cut, 1);
        assert_eq!(r.descents, 20);
    }

    #[test]
    fn more_descents_never_hurt() {
        let h = dumbbell();
        let run = |descents, seed| {
            let cfg = LsmcConfig {
                descents,
                ..LsmcConfig::default()
            };
            let mut rng = seeded_rng(seed);
            lsmc_bipartition(&h, &cfg, &mut rng).1.cut
        };
        // Same seed: a longer chain's incumbent can only improve.
        assert!(run(25, 7) <= run(1, 7));
    }

    #[test]
    fn result_cut_matches_partition() {
        let h = dumbbell();
        let cfg = LsmcConfig {
            descents: 5,
            ..LsmcConfig::default()
        };
        let mut rng = seeded_rng(9);
        let (p, r) = lsmc_bipartition(&h, &cfg, &mut rng);
        assert_eq!(r.cut, metrics::cut(&h, &p));
        assert!(p.validate(&h));
    }

    #[test]
    fn kway_variant_finds_ring_optimum() {
        let mut b = HypergraphBuilder::with_unit_areas(16);
        for c in 0..4usize {
            for i in 0..4usize {
                for j in (i + 1)..4 {
                    b.add_net([4 * c + i, 4 * c + j]).unwrap();
                }
            }
            b.add_net([4 * c + 3, (4 * c + 4) % 16]).unwrap();
        }
        let h = b.build().unwrap();
        let cfg = LsmcKwayConfig {
            descents: 20,
            ..LsmcKwayConfig::default()
        };
        let mut rng = seeded_rng(5);
        let (p, r) = lsmc_kway(&h, 4, &cfg, &mut rng);
        assert_eq!(r.cut, 4);
        assert_eq!(r.cut, metrics::cut(&h, &p));
    }

    #[test]
    fn improvements_counted() {
        let h = dumbbell();
        let cfg = LsmcConfig {
            descents: 30,
            ..LsmcConfig::default()
        };
        let mut rng = seeded_rng(123);
        let (_, r) = lsmc_bipartition(&h, &cfg, &mut rng);
        assert!(r.improvements < r.descents);
    }

    #[test]
    fn deterministic_given_seed() {
        let h = dumbbell();
        let cfg = LsmcConfig {
            descents: 8,
            ..LsmcConfig::default()
        };
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            lsmc_bipartition(&h, &cfg, &mut rng)
        };
        let (p1, r1) = run(4);
        let (p2, r2) = run(4);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "at least one descent")]
    fn rejects_zero_descents() {
        let h = dumbbell();
        let cfg = LsmcConfig {
            descents: 0,
            ..LsmcConfig::default()
        };
        let mut rng = seeded_rng(0);
        let _ = lsmc_bipartition(&h, &cfg, &mut rng);
    }
}
