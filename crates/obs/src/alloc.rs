//! Opt-in allocation accounting (cargo feature `obs-alloc`).
//!
//! Compiling this module installs [`TrackingAlloc`] as the process global
//! allocator: a thin wrapper over [`std::alloc::System`] that maintains four
//! thread-local tallies — cumulative allocated bytes, allocation count, live
//! bytes, and a live-bytes high-water mark. The span layer snapshots the
//! tallies at `Begin` and attaches the deltas to the matching `End` event
//! (`alloc_bytes`/`alloc_count`/`alloc_peak`), attributing every allocation
//! to the innermost open span on the allocating thread.
//!
//! # Non-normative by construction
//!
//! Allocation values are telemetry, like timestamps: a worker reusing a
//! warm refinement workspace allocates less than a cold one, and
//! which worker runs which start is a scheduling accident. The exporters
//! therefore treat the `alloc_*` keys exactly like timing — zeroed by
//! `strip_timing`, removed entirely by `strip_profile` so traces from
//! `obs-alloc` and plain `obs` builds compare equal on content.
//!
//! The tallies are `Cell`s in `const`-initialized thread-local storage: no
//! lazy initialization, no destructor, and no allocation inside the
//! allocator hooks themselves, so the wrapper cannot recurse or touch TLS
//! during thread teardown. It never reads a clock — `clock.rs` stays the
//! crate's single wall-clock site.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Cumulative bytes handed out on this thread.
    static BYTES: Cell<u64> = const { Cell::new(0) };
    /// Cumulative successful allocations on this thread.
    static COUNT: Cell<u64> = const { Cell::new(0) };
    /// Live bytes: allocated minus freed *on this thread*. A buffer freed
    /// on a different thread than it was allocated on under-counts here;
    /// the pipeline's per-start workspaces are thread-confined, so in
    /// practice the watermark tracks real usage.
    static LIVE: Cell<u64> = const { Cell::new(0) };
    /// High-water mark of `LIVE` since the innermost span snapshot.
    static PEAK: Cell<u64> = const { Cell::new(0) };
}

/// Global allocator wrapper that tallies per-thread allocation traffic.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAlloc;

#[inline]
fn on_alloc(size: u64) {
    BYTES.set(BYTES.get().wrapping_add(size));
    COUNT.set(COUNT.get().wrapping_add(1));
    let live = LIVE.get().saturating_add(size);
    LIVE.set(live);
    if live > PEAK.get() {
        PEAK.set(live);
    }
}

#[inline]
fn on_dealloc(size: u64) {
    LIVE.set(LIVE.get().saturating_sub(size));
}

// SAFETY: delegates every allocation verbatim to `System`; the bookkeeping
// only touches const-initialized thread-local `Cell`s (no allocation, no
// locks, no reentrancy).
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Accounted as one new allocation of the new size plus a free
            // of the old block — the live watermark stays exact and the
            // byte tally counts traffic, not residency.
            on_alloc(new_size as u64);
            on_dealloc(layout.size() as u64);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

/// A snapshot of this thread's tallies at span `Begin`, consumed at `End`.
#[derive(Debug, Clone, Copy)]
pub struct SpanAlloc {
    bytes0: u64,
    count0: u64,
    live0: u64,
    outer_peak: u64,
}

/// Snapshot of one thread's allocation counters (for tests and harnesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tally {
    /// Cumulative allocated bytes on this thread.
    pub bytes: u64,
    /// Cumulative allocation count on this thread.
    pub count: u64,
    /// Live bytes (allocated minus freed on this thread).
    pub live: u64,
}

/// Reads this thread's current tallies.
pub fn tally() -> Tally {
    Tally {
        bytes: BYTES.get(),
        count: COUNT.get(),
        live: LIVE.get(),
    }
}

/// Opens a span-attribution window: snapshots the cumulative tallies and
/// resets the peak watermark to the current live size, so a nested span
/// measures its own high-water mark rather than inheriting the parent's.
pub(crate) fn span_begin() -> SpanAlloc {
    let s = SpanAlloc {
        bytes0: BYTES.get(),
        count0: COUNT.get(),
        live0: LIVE.get(),
        outer_peak: PEAK.get(),
    };
    PEAK.set(LIVE.get());
    s
}

/// Closes a window opened by [`span_begin`], returning
/// `(bytes, count, peak)`: bytes and allocations since the snapshot, and
/// the peak growth of live bytes above the level at span entry. Restores
/// the enclosing span's watermark, folding in anything the inner span
/// pushed it past.
pub(crate) fn span_end(s: SpanAlloc) -> (u64, u64, u64) {
    let bytes = BYTES.get().wrapping_sub(s.bytes0);
    let count = COUNT.get().wrapping_sub(s.count0);
    let inner_peak = PEAK.get();
    PEAK.set(s.outer_peak.max(inner_peak));
    (bytes, count, inner_peak.saturating_sub(s.live0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_grow_with_allocations() {
        let before = tally();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let after = tally();
        assert!(after.bytes >= before.bytes + 4096, "bytes counted");
        assert!(after.count > before.count, "count counted");
        drop(v);
        assert!(tally().live <= after.live, "dealloc shrinks live");
    }

    #[test]
    fn span_window_attributes_bytes_and_peak() {
        let w = span_begin();
        let v: Vec<u8> = Vec::with_capacity(10_000);
        drop(v);
        let (bytes, count, peak) = span_end(w);
        assert!(bytes >= 10_000, "window sees the allocation: {bytes}");
        assert!(count >= 1);
        assert!(peak >= 10_000, "peak tracks the transient: {peak}");
    }

    #[test]
    fn nested_windows_restore_outer_peak() {
        let outer = span_begin();
        let big: Vec<u8> = Vec::with_capacity(50_000);
        drop(big);
        let inner = span_begin();
        let small: Vec<u8> = Vec::with_capacity(100);
        drop(small);
        let (_, _, inner_peak) = span_end(inner);
        let (_, _, outer_peak) = span_end(outer);
        assert!(
            inner_peak < 50_000,
            "inner window does not inherit outer peak"
        );
        assert!(
            outer_peak >= 50_000,
            "outer window keeps its own high-water mark"
        );
    }
}
