//! `obs-diff` — compare two observability artifacts for regressions.
//!
//! ```text
//! obs-diff [OPTIONS] <BASELINE> <CANDIDATE>
//! ```
//!
//! Both inputs must be the same kind of artifact: run reports
//! (`mlpart-run-report-v2`/`v3`, from `--report-out`), Chrome traces or
//! JSONL traces (from `--trace-out`). Exit codes: 0 clean, 1 telemetry
//! regression past a threshold, 2 content mismatch / unusable input.

use mlpart_obs::diff::{diff_documents, DiffOptions, EXIT_ERROR};
use std::process::ExitCode;

const USAGE: &str = "usage: obs-diff [OPTIONS] <BASELINE> <CANDIDATE>

Compares two run reports or traces produced by the same workload.
Normative content must be byte-identical after normalization (exit 2
otherwise); per-phase time/alloc ratios past a threshold exit 1.

options:
  --max-time-ratio R    flag phases slower than R x baseline   [1.5]
  --max-alloc-ratio R   flag phases allocating > R x baseline  [1.5]
  --min-total-ns N      ignore phases under N ns baseline      [1000000]
  --min-alloc-bytes N   ignore phases under N bytes baseline   [1048576]
  -h, --help            print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("obs-diff: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(EXIT_ERROR)
}

fn main() -> ExitCode {
    let mut opts = DiffOptions::default();
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> Result<f64, String> {
            let v = args.next().ok_or(format!("{name} needs a value"))?;
            v.parse::<f64>()
                .map_err(|_| format!("{name}: bad number '{v}'"))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--max-time-ratio" => match num(&arg) {
                Ok(v) => opts.max_time_ratio = v,
                Err(e) => return fail(&e),
            },
            "--max-alloc-ratio" => match num(&arg) {
                Ok(v) => opts.max_alloc_ratio = v,
                Err(e) => return fail(&e),
            },
            "--min-total-ns" => match num(&arg) {
                Ok(v) => opts.min_total_ns = v as u64,
                Err(e) => return fail(&e),
            },
            "--min-alloc-bytes" => match num(&arg) {
                Ok(v) => opts.min_alloc_bytes = v as u64,
                Err(e) => return fail(&e),
            },
            _ if arg.starts_with('-') => return fail(&format!("unknown option '{arg}'")),
            _ => paths.push(arg),
        }
    }
    if paths.len() != 2 {
        return fail("expected exactly two input files");
    }
    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    };
    let (a, b) = match (read(&paths[0]), read(&paths[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obs-diff: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let result = diff_documents(&paths[0], &a, &paths[1], &b, &opts);
    print!("{}", result.text);
    ExitCode::from(result.exit)
}
