//! The crate's single monotonic-clock site.
//!
//! Every timestamp in a trace comes from [`now_ns`] and nowhere else, so
//! the determinism lint's wall-clock whitelist covers exactly this file
//! (`lint-allow.txt`: `wall-clock crates/obs/src/clock.rs`). Timestamps are
//! telemetry only: they feed the `ts`/`dur_ns` fields that
//! [`crate::export::strip_timing`] removes before any equality comparison,
//! and no algorithm decision ever reads them.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first call in this process.
///
/// Using a process-wide epoch (rather than `Instant` values directly) keeps
/// the recorded integers small and lets merged multi-thread streams share
/// one timeline.
pub fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    // u128 -> u64 truncation is unreachable in practice (584 years).
    epoch.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
