//! Comparison engine behind the `obs-diff` binary.
//!
//! Compares two observability artifacts — run reports (v2 or v3), Chrome
//! traces, or JSONL traces — in two stages:
//!
//! 1. **Normative content check.** Both documents are normalized with
//!    [`strip_profile`] (timing zeroed, scheduling keys zeroed, alloc keys
//!    removed) and compared byte-for-byte. Any difference means the two
//!    runs did different *work* — not a performance delta — and the diff
//!    refuses to proceed.
//! 2. **Telemetry deltas.** Per-phase time (and, when both sides tracked
//!    allocations, per-phase allocation) ratios are reported, and phases
//!    above a noise floor whose ratio exceeds the configured threshold are
//!    flagged as regressions.
//!
//! # Exit contract
//!
//! - [`EXIT_CLEAN`] (0) — identical normative content, all ratios within
//!   thresholds.
//! - [`EXIT_REGRESSION`] (1) — identical content, but at least one phase
//!   regressed past a threshold.
//! - [`EXIT_ERROR`] (2) — normative content mismatch, or the inputs could
//!   not be read/parsed/paired (usage errors included).

use crate::export::strip_profile;
use crate::json;
use crate::profile::{self, PhaseAgg};
use crate::report;

/// Content identical, telemetry within thresholds.
pub const EXIT_CLEAN: u8 = 0;
/// Content identical, but a tracked phase regressed past a threshold.
pub const EXIT_REGRESSION: u8 = 1;
/// Content mismatch or unusable input.
pub const EXIT_ERROR: u8 = 2;

/// Thresholds for the telemetry stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// A phase regresses when `new_total / old_total` exceeds this.
    pub max_time_ratio: f64,
    /// A phase regresses when `new_alloc_bytes / old_alloc_bytes` exceeds
    /// this (checked only when both sides tracked allocations).
    pub max_alloc_ratio: f64,
    /// Phases whose baseline total is below this many nanoseconds are
    /// reported but never flagged (timer noise floor).
    pub min_total_ns: u64,
    /// Phases whose baseline allocation is below this many bytes are never
    /// alloc-flagged.
    pub min_alloc_bytes: u64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            max_time_ratio: 1.5,
            max_alloc_ratio: 1.5,
            min_total_ns: 1_000_000,
            min_alloc_bytes: 1 << 20,
        }
    }
}

/// The rendered comparison plus the exit code the binary should use.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// One of the `EXIT_*` codes.
    pub exit: u8,
    /// Human-readable comparison (table + verdict lines).
    pub text: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Report,
    Chrome,
    Jsonl,
}

impl Format {
    fn name(self) -> &'static str {
        match self {
            Format::Report => "run-report",
            Format::Chrome => "chrome-trace",
            Format::Jsonl => "jsonl-trace",
        }
    }
}

fn detect(text: &str) -> Result<Format, String> {
    let head = text.trim_start();
    if head.starts_with("{\"schema\":\"mlpart-run-report") {
        Ok(Format::Report)
    } else if head.starts_with("{\"traceEvents\"") {
        Ok(Format::Chrome)
    } else if head.starts_with("{\"ev\":") {
        Ok(Format::Jsonl)
    } else {
        Err(
            "unrecognized document (expected a run report, chrome trace, or JSONL trace)"
                .to_string(),
        )
    }
}

struct Side {
    phases: Vec<PhaseAgg>,
    alloc_tracked: bool,
}

fn load(format: Format, text: &str) -> Result<Side, String> {
    match format {
        Format::Report => {
            let loaded = report::parse_report(text)?;
            Ok(Side {
                phases: loaded.phases,
                alloc_tracked: loaded.alloc_tracked,
            })
        }
        Format::Chrome => {
            let phases = profile::phases_from_chrome(&json::parse(text)?)?;
            let alloc_tracked = phases.iter().any(|p| p.alloc_count > 0);
            Ok(Side {
                phases,
                alloc_tracked,
            })
        }
        Format::Jsonl => {
            let phases = profile::phases_from_jsonl(text)?;
            let alloc_tracked = phases.iter().any(|p| p.alloc_count > 0);
            Ok(Side {
                phases,
                alloc_tracked,
            })
        }
    }
}

/// Points at the first line where two normalized documents disagree.
fn first_divergence(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            let col = la
                .bytes()
                .zip(lb.bytes())
                .position(|(x, y)| x != y)
                .unwrap_or_else(|| la.len().min(lb.len()));
            return format!("first divergence at line {}, byte {col}", i + 1);
        }
    }
    format!(
        "documents agree on the common prefix but differ in length ({} vs {} lines)",
        a.lines().count(),
        b.lines().count()
    )
}

fn ratio(new: u64, old: u64) -> f64 {
    if old == 0 {
        if new == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        new as f64 / old as f64
    }
}

/// Compares two artifact documents; see the module docs for the contract.
/// `label_a`/`label_b` name the sides in the rendered output (typically
/// the file paths).
pub fn diff_documents(
    label_a: &str,
    a: &str,
    label_b: &str,
    b: &str,
    opts: &DiffOptions,
) -> DiffReport {
    let mut text = String::new();
    let (fa, fb) = match (detect(a), detect(b)) {
        (Ok(fa), Ok(fb)) => (fa, fb),
        (Err(e), _) => {
            return DiffReport {
                exit: EXIT_ERROR,
                text: format!("{label_a}: {e}\n"),
            }
        }
        (_, Err(e)) => {
            return DiffReport {
                exit: EXIT_ERROR,
                text: format!("{label_b}: {e}\n"),
            }
        }
    };
    if fa != fb {
        return DiffReport {
            exit: EXIT_ERROR,
            text: format!(
                "format mismatch: {label_a} is a {} but {label_b} is a {}\n",
                fa.name(),
                fb.name()
            ),
        };
    }
    // Stage 1: byte-identical normative content after normalization.
    let norm_a = strip_profile(a);
    let norm_b = strip_profile(b);
    if norm_a != norm_b {
        return DiffReport {
            exit: EXIT_ERROR,
            text: format!(
                "NORMATIVE CONTENT MISMATCH: the two {}s did different work \
                 ({})\nA regression diff needs same-seed, same-config runs.\n",
                fa.name(),
                first_divergence(&norm_a, &norm_b)
            ),
        };
    }
    text.push_str(&format!(
        "normative content: identical ({} format)\n",
        fa.name()
    ));
    // Stage 2: per-phase telemetry.
    let (sa, sb) = match (load(fa, a), load(fb, b)) {
        (Ok(sa), Ok(sb)) => (sa, sb),
        (Err(e), _) | (_, Err(e)) => {
            return DiffReport {
                exit: EXIT_ERROR,
                text: format!("cannot extract phases: {e}\n"),
            }
        }
    };
    // Content was byte-identical, so the phase lists line up 1:1.
    let alloc = sa.alloc_tracked && sb.alloc_tracked;
    text.push_str(&format!(
        "{:<16} {:>7} {:>12} {:>12} {:>7}{}\n",
        "phase",
        "count",
        "old_ms",
        "new_ms",
        "ratio",
        if alloc {
            format!(
                " {:>12} {:>12} {:>7}",
                "old_alloc_kb", "new_alloc_kb", "ratio"
            )
        } else {
            String::new()
        }
    ));
    let mut regressions = Vec::new();
    for (pa, pb) in sa.phases.iter().zip(&sb.phases) {
        let t_ratio = ratio(pb.total_ns, pa.total_ns);
        let mut line = format!(
            "{:<16} {:>7} {:>12.3} {:>12.3} {:>7.2}",
            pa.name,
            pa.count,
            pa.total_ns as f64 / 1e6,
            pb.total_ns as f64 / 1e6,
            t_ratio
        );
        if alloc {
            line.push_str(&format!(
                " {:>12.1} {:>12.1} {:>7.2}",
                pa.alloc_bytes as f64 / 1024.0,
                pb.alloc_bytes as f64 / 1024.0,
                ratio(pb.alloc_bytes, pa.alloc_bytes)
            ));
        }
        if pa.total_ns >= opts.min_total_ns && t_ratio > opts.max_time_ratio {
            line.push_str("  <-- TIME REGRESSION");
            regressions.push(format!(
                "{}: time {:.2}x (limit {:.2}x)",
                pa.name, t_ratio, opts.max_time_ratio
            ));
        }
        if alloc && pa.alloc_bytes >= opts.min_alloc_bytes {
            let a_ratio = ratio(pb.alloc_bytes, pa.alloc_bytes);
            if a_ratio > opts.max_alloc_ratio {
                line.push_str("  <-- ALLOC REGRESSION");
                regressions.push(format!(
                    "{}: alloc {:.2}x (limit {:.2}x)",
                    pa.name, a_ratio, opts.max_alloc_ratio
                ));
            }
        }
        line.push('\n');
        text.push_str(&line);
    }
    if !alloc && (sa.alloc_tracked || sb.alloc_tracked) {
        text.push_str("note: only one side tracked allocations; alloc deltas skipped\n");
    }
    if regressions.is_empty() {
        text.push_str("verdict: clean\n");
        DiffReport {
            exit: EXIT_CLEAN,
            text,
        }
    } else {
        for r in &regressions {
            text.push_str(&format!("verdict: REGRESSION {r}\n"));
        }
        DiffReport {
            exit: EXIT_REGRESSION,
            text,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EvKind, Event, Trace, V};

    /// A hand-built trace with controlled durations: run(0..base*4) holding
    /// two level spans of `base` ns each.
    fn synthetic(base: u64, kept: u64) -> Trace {
        let ev = |kind, name, ts_ns, args: Vec<(&'static str, V)>| Event {
            kind,
            name,
            ts_ns,
            args,
        };
        Trace {
            events: vec![
                ev(EvKind::Begin, "run", 0, vec![("runs", V::U(2))]),
                ev(EvKind::Begin, "level", base, vec![("level", V::U(0))]),
                ev(
                    EvKind::Counter,
                    "fm_pass",
                    base + 1,
                    vec![("kept", V::U(kept))],
                ),
                ev(EvKind::End, "level", base * 2, vec![]),
                ev(EvKind::Begin, "level", base * 2, vec![("level", V::U(1))]),
                ev(EvKind::End, "level", base * 3, vec![]),
                ev(EvKind::End, "run", base * 4, vec![]),
            ],
        }
    }

    fn report_doc(base: u64, kept: u64) -> String {
        crate::report::RunReport {
            meta: vec![("algo", V::S("ml-c")), ("seed", V::U(7))],
            cuts: vec![30, 31],
            failures: Vec::new(),
            truncations: Vec::new(),
            retries: Vec::new(),
            repairs: Vec::new(),
            wall_secs: base as f64 / 1e9,
            cpu_secs: base as f64 / 1e9,
            trace: synthetic(base, kept),
        }
        .to_json()
    }

    fn opts() -> DiffOptions {
        DiffOptions {
            min_total_ns: 1_000,
            ..DiffOptions::default()
        }
    }

    #[test]
    fn same_content_different_timing_is_clean() {
        let a = report_doc(10_000_000, 5);
        let b = report_doc(11_000_000, 5); // 1.1x — under the 1.5x threshold
        let d = diff_documents("a", &a, "b", &b, &opts());
        assert_eq!(d.exit, EXIT_CLEAN, "{}", d.text);
        assert!(d.text.contains("normative content: identical"));
        assert!(d.text.contains("verdict: clean"));
    }

    #[test]
    fn time_regression_trips_threshold() {
        let a = report_doc(10_000_000, 5);
        let b = report_doc(100_000_000, 5); // 10x
        let d = diff_documents("a", &a, "b", &b, &opts());
        assert_eq!(d.exit, EXIT_REGRESSION, "{}", d.text);
        assert!(d.text.contains("TIME REGRESSION"), "{}", d.text);
        // The reverse direction is an improvement, not a regression.
        let d = diff_documents("b", &b, "a", &a, &opts());
        assert_eq!(d.exit, EXIT_CLEAN, "{}", d.text);
    }

    #[test]
    fn content_mismatch_is_an_error_not_a_delta() {
        let a = report_doc(10_000_000, 5);
        let b = report_doc(10_000_000, 6); // different counter content
        let d = diff_documents("a", &a, "b", &b, &opts());
        assert_eq!(d.exit, EXIT_ERROR, "{}", d.text);
        assert!(d.text.contains("NORMATIVE CONTENT MISMATCH"));
    }

    #[test]
    fn jsonl_traces_diff_like_reports() {
        let a = crate::export::to_jsonl(&synthetic(10_000_000, 5));
        let slow = crate::export::to_jsonl(&synthetic(90_000_000, 5));
        let d = diff_documents("a", &a, "b", &slow, &opts());
        assert_eq!(d.exit, EXIT_REGRESSION, "{}", d.text);
        let changed = crate::export::to_jsonl(&synthetic(10_000_000, 9));
        let d = diff_documents("a", &a, "b", &changed, &opts());
        assert_eq!(d.exit, EXIT_ERROR, "{}", d.text);
    }

    #[test]
    fn mixed_formats_are_rejected() {
        let a = report_doc(10_000_000, 5);
        let b = crate::export::to_jsonl(&synthetic(10_000_000, 5));
        let d = diff_documents("a", &a, "b", &b, &opts());
        assert_eq!(d.exit, EXIT_ERROR);
        assert!(d.text.contains("format mismatch"));
        let d = diff_documents("a", "garbage", "b", &b, &opts());
        assert_eq!(d.exit, EXIT_ERROR);
    }
}
