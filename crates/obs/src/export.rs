//! Trace exporters: JSONL event stream and Chrome Trace Event Format.
//!
//! Both formats interleave deterministic content with timestamps;
//! [`strip_timing`] normalizes the timestamp fields so exported documents
//! can be compared byte-for-byte across runs and thread counts.

use crate::json;
use crate::trace::{EvKind, Trace, V};

pub(crate) fn write_v(out: &mut String, v: &V) {
    match v {
        V::U(n) => out.push_str(&format!("{n}")),
        V::I(n) => out.push_str(&format!("{n}")),
        V::F(n) => json::write_f64(out, *n),
        V::S(s) => json::write_str(out, s),
    }
}

pub(crate) fn write_args(out: &mut String, args: &[(&'static str, V)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(out, k);
        out.push(':');
        write_v(out, v);
    }
    out.push('}');
}

/// Serializes a trace as one JSON object per line:
/// `{"ev":"B"|"E"|"C","name":...,"ts":<ns>,"args":{...}}`.
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for ev in &trace.events {
        out.push_str("{\"ev\":\"");
        out.push(match ev.kind {
            EvKind::Begin => 'B',
            EvKind::End => 'E',
            EvKind::Counter => 'C',
        });
        out.push_str("\",\"name\":");
        json::write_str(&mut out, ev.name);
        out.push_str(&format!(",\"ts\":{}", ev.ts_ns));
        out.push_str(",\"args\":");
        write_args(&mut out, &ev.args);
        out.push_str("}\n");
    }
    out
}

/// Interns a string into the process-wide `&'static str` pool, leaking each
/// distinct name exactly once. Trace event names and argument keys are
/// `&'static str` by construction; reconstructing a trace from its JSONL
/// serialization (checkpoint resume) has to mint equivalent statics.
fn intern(s: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&hit) = pool.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// Byte cursor over one JSONL line. [`to_jsonl`]'s output is rigid (no
/// whitespace, fixed key order), so the reader is a straight-line scanner
/// rather than a general JSON parser — crucially it keeps integer argument
/// values exact (`u64`/`i64`), where a round-trip through `json::parse`'s
/// `f64` numbers would corrupt values above 2^53 (seeds, hash draws).
struct LineCursor<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> LineCursor<'a> {
    fn expect(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!(
                "expected {lit:?} at byte {} of {:?}",
                self.pos, self.s
            ))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.as_bytes().get(self.pos).copied()
    }

    /// Parses a quoted string, unescaping what [`crate::json::escape_into`]
    /// emits (plus the standard escapes it never produces).
    fn string(&mut self) -> Result<String, String> {
        self.expect("\"")?;
        let mut out = String::new();
        let bytes = self.s.as_bytes();
        loop {
            let Some(&b) = bytes.get(self.pos) else {
                return Err(format!("unterminated string in {:?}", self.s));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = bytes
                        .get(self.pos)
                        .ok_or_else(|| format!("dangling escape in {:?}", self.s))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| format!("truncated \\u escape in {:?}", self.s))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape \\{}", *other as char)),
                    }
                }
                _ => {
                    let c = self.s[self.pos..]
                        .chars()
                        .next()
                        .expect("pos is on a char boundary");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses a number token into the `V` variant that re-serializes to the
    /// same bytes: plain digits → `U`, leading `-` → `I`, anything with a
    /// fraction or exponent → `F`.
    fn number(&mut self) -> Result<V, String> {
        let start = self.pos;
        let bytes = self.s.as_bytes();
        while self.pos < bytes.len()
            && matches!(
                bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let tok = &self.s[start..self.pos];
        if tok.is_empty() {
            return Err(format!("expected a number at byte {start} of {:?}", self.s));
        }
        if tok.contains(['.', 'e', 'E']) {
            tok.parse::<f64>()
                .map(V::F)
                .map_err(|e| format!("bad number {tok:?}: {e}"))
        } else if tok.starts_with('-') {
            tok.parse::<i64>()
                .map(V::I)
                .map_err(|e| format!("bad number {tok:?}: {e}"))
        } else {
            tok.parse::<u64>()
                .map(V::U)
                .map_err(|e| format!("bad number {tok:?}: {e}"))
        }
    }

    fn args(&mut self) -> Result<Vec<(&'static str, V)>, String> {
        self.expect("{")?;
        let mut args = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(args);
        }
        loop {
            let key = intern(&self.string()?);
            self.expect(":")?;
            let value = match self.peek() {
                Some(b'"') => V::S(intern(&self.string()?)),
                _ => self.number()?,
            };
            args.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(args);
                }
                _ => return Err(format!("malformed args object in {:?}", self.s)),
            }
        }
    }
}

/// Reconstructs a [`Trace`] from its [`to_jsonl`] serialization.
///
/// The inverse the checkpoint/resume path relies on:
/// `to_jsonl(trace_from_jsonl(to_jsonl(t))?) == to_jsonl(t)` byte-for-byte,
/// timestamps included — integer argument values stay exact at full
/// `u64`/`i64` range, and event names and argument keys are interned into
/// the process-wide static pool.
///
/// # Errors
///
/// Returns a message naming the offending line for anything that is not a
/// `to_jsonl`-shaped event line.
pub fn trace_from_jsonl(text: &str) -> Result<Trace, String> {
    let mut trace = Trace::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut c = LineCursor { s: line, pos: 0 };
        let parsed = (|| -> Result<crate::trace::Event, String> {
            c.expect("{\"ev\":")?;
            let kind = match c.string()?.as_str() {
                "B" => EvKind::Begin,
                "E" => EvKind::End,
                "C" => EvKind::Counter,
                other => return Err(format!("unknown event kind {other:?}")),
            };
            c.expect(",\"name\":")?;
            let name = intern(&c.string()?);
            c.expect(",\"ts\":")?;
            let ts_ns = match c.number()? {
                V::U(n) => n,
                other => return Err(format!("ts must be a non-negative integer, got {other:?}")),
            };
            c.expect(",\"args\":")?;
            let args = c.args()?;
            c.expect("}")?;
            if c.pos != line.len() {
                return Err(format!("trailing bytes after event object in {line:?}"));
            }
            Ok(crate::trace::Event {
                kind,
                name,
                ts_ns,
                args,
            })
        })();
        trace
            .events
            .push(parsed.map_err(|e| format!("trace line {}: {e}", lineno + 1))?);
    }
    Ok(trace)
}

/// Serializes a trace in Chrome Trace Event Format (JSON object format),
/// loadable in `chrome://tracing` and Perfetto.
///
/// Spans become duration events (`ph: "B"`/`"E"`); counters become thread
/// instants (`ph: "i"`, `s: "t"`). Timestamps are microseconds as the
/// format requires; everything runs on `pid` 0 with `tid` 0 (the merged
/// stream is already serialized in deterministic start order).
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in trace.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_str(&mut out, ev.name);
        let ph = match ev.kind {
            EvKind::Begin => "B",
            EvKind::End => "E",
            EvKind::Counter => "i",
        };
        out.push_str(&format!(
            ",\"ph\":\"{ph}\",\"pid\":0,\"tid\":0,\"ts\":{}",
            ev.ts_ns / 1_000
        ));
        if ev.kind == EvKind::Counter {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":");
        write_args(&mut out, &ev.args);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Timestamp-carrying JSON keys excluded from the determinism contract,
/// plus the allocation telemetry keys — alloc tallies depend on which
/// worker's warm workspace ran a start, so they are scheduling artifacts
/// exactly like durations.
const TIMING_KEYS: [&str; 10] = [
    "ts",
    "dur_ns",
    "wall_secs",
    "cpu_secs",
    "fill_ms",
    "total_ns",
    "self_ns",
    "alloc_bytes",
    "alloc_count",
    "alloc_peak",
];

/// Allocation keys present only in `obs-alloc` builds: [`strip_profile`]
/// removes them entirely so traces from `obs` and `obs-alloc` builds of the
/// same workload compare equal on content.
const ALLOC_KEYS: [&str; 3] = ["alloc_bytes", "alloc_count", "alloc_peak"];

/// Keys that record the execution *schedule* rather than content: the
/// thread count and whether the allocator was instrumented. Zeroed by
/// [`strip_profile`] so same-seed documents from different `--threads`
/// settings (and alloc on/off builds) compare equal — the contract the
/// `obs-diff` tool byte-verifies.
const SCHED_KEYS: [&str; 2] = ["threads", "alloc_tracked"];

/// True for argument keys excluded from the determinism contract (timing,
/// allocation, scheduling); the metrics registry skips these when folding.
pub fn is_non_normative_key(key: &str) -> bool {
    TIMING_KEYS.contains(&key) || SCHED_KEYS.contains(&key)
}

/// Zeroes the numeric value after every `"key":` occurrence for each key in
/// `keys`; everything else is byte-for-byte intact.
fn strip_keys(s: &str, keys: &[&str]) -> String {
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut pos = 0usize;
    while pos < bytes.len() {
        let matched = keys.iter().find_map(|key| {
            let pat_len = key.len() + 3; // "key":
            let pat = format!("\"{key}\":");
            bytes[pos..].starts_with(pat.as_bytes()).then_some(pat_len)
        });
        if let Some(pat_len) = matched {
            out.push_str(&s[pos..pos + pat_len]);
            pos += pat_len;
            let start = pos;
            while pos < bytes.len()
                && matches!(bytes[pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                pos += 1;
            }
            // Only replace an actual number; leave anything else alone.
            out.push_str(if pos > start { "0" } else { &s[start..pos] });
        } else {
            let c = s[pos..].chars().next().unwrap();
            out.push(c);
            pos += c.len_utf8();
        }
    }
    out
}

/// Returns `s` with the numeric value after every timing or allocation key
/// (`"ts"`, `"dur_ns"`, `"wall_secs"`, `"cpu_secs"`, `"fill_ms"`,
/// `"total_ns"`, `"self_ns"`, `"alloc_*"`) replaced by `0`.
///
/// Everything else is left byte-for-byte intact, so two exports of the same
/// deterministic content compare equal after stripping — this is the
/// comparison the trace-determinism tests and CI perform.
pub fn strip_timing(s: &str) -> String {
    strip_keys(s, &TIMING_KEYS)
}

/// The profile-comparison normalization: [`strip_timing`] plus zeroing the
/// scheduling keys (`"threads"`, `"alloc_tracked"`) and *removing* the
/// allocation keys outright.
///
/// Zeroing suffices when a key appears on both sides; the `alloc_*` args
/// only exist in `obs-alloc` builds, so equality across alloc on/off
/// requires deleting them. After `strip_profile`, any two documents for the
/// same `(netlist, config, seed)` must be byte-identical regardless of
/// thread count or allocator instrumentation — `obs-diff` exits 2 when they
/// are not.
pub fn strip_profile(s: &str) -> String {
    let mut keys: Vec<&str> = TIMING_KEYS.to_vec();
    keys.extend(SCHED_KEYS);
    let mut out = strip_keys(s, &keys);
    for key in ALLOC_KEYS {
        // Values are already zeroed, so the occurrences are literal; drop
        // them with whichever comma keeps the object well-formed.
        out = out.replace(&format!("\"{key}\":0,"), "");
        out = out.replace(&format!(",\"{key}\":0"), "");
        out = out.replace(&format!("\"{key}\":0"), "");
    }
    out
}

/// Zeroes the trailing sample value of every folded-stack line, keeping the
/// stack frames (the normative part) intact.
pub fn strip_folded(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for line in s.lines() {
        match line.rsplit_once(' ') {
            Some((stack, _value)) => {
                out.push_str(stack);
                out.push_str(" 0\n");
            }
            None => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{capture, counter, span};

    fn sample_trace() -> Trace {
        crate::force_enabled(true);
        let (_, t) = capture(|| {
            let _run = span("run", &[("runs", V::U(2)), ("algo", V::S("ml-fm"))]);
            counter(
                "pass",
                &[
                    ("cut_before", V::U(40)),
                    ("cut_after", V::U(31)),
                    ("ratio", V::F(0.35)),
                ],
            );
        });
        crate::force_enabled(false);
        t.expect("recorded")
    }

    #[test]
    fn jsonl_lines_parse_and_carry_args() {
        let _gate = crate::test_gate_lock();
        let jsonl = to_jsonl(&sample_trace());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            json::parse(line).expect("each JSONL line is valid JSON");
        }
        let pass = json::parse(lines[1]).unwrap();
        assert_eq!(pass.get("ev").unwrap().as_str(), Some("C"));
        assert_eq!(
            pass.get("args").unwrap().get("cut_after").unwrap().as_num(),
            Some(31.0)
        );
        assert_eq!(
            pass.get("args").unwrap().get("ratio").unwrap().as_num(),
            Some(0.35)
        );
    }

    #[test]
    fn chrome_trace_is_valid_and_balanced() {
        let _gate = crate::test_gate_lock();
        let doc = to_chrome_trace(&sample_trace());
        let parsed = json::parse(&doc).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3);
        let phs: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phs, vec!["B", "i", "E"]);
        assert_eq!(events[1].get("s").unwrap().as_str(), Some("t"));
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let _gate = crate::test_gate_lock();
        crate::force_enabled(true);
        let (_, t) = capture(|| {
            let _run = span(
                "run",
                &[
                    ("seed", V::U(u64::MAX)),
                    ("offset", V::I(-42)),
                    ("ratio", V::F(0.35)),
                    ("whole", V::F(2.0)),
                    ("name", V::S("a \"quoted\"\n\tpath\\x")),
                ],
            );
            counter("draw", &[("value", V::U(9_007_199_254_740_993))]);
        });
        crate::force_enabled(false);
        let mut t = t.expect("recorded");
        t.events[0].ts_ns = 123_456_789; // exercise non-zero timestamps too
        let jsonl = to_jsonl(&t);
        let back = trace_from_jsonl(&jsonl).expect("round-trip parses");
        // Byte-identical re-serialization — including values above 2^53
        // that an f64 round-trip would corrupt.
        assert_eq!(to_jsonl(&back), jsonl);
        assert_eq!(back.events[0].ts_ns, 123_456_789);
        assert_eq!(back.events[0].args[0], ("seed", V::U(u64::MAX)));
        assert_eq!(back.events[0].args[1], ("offset", V::I(-42)));
        // Empty input is an empty trace, blank lines are skipped.
        assert!(trace_from_jsonl("").expect("empty ok").events.is_empty());
        assert_eq!(
            trace_from_jsonl(&format!("\n{jsonl}\n"))
                .expect("blank lines ok")
                .events
                .len(),
            t.events.len()
        );
    }

    #[test]
    fn malformed_jsonl_is_a_named_error_not_a_panic() {
        for bad in [
            "{",
            "{\"ev\":\"X\",\"name\":\"a\",\"ts\":0,\"args\":{}}",
            "{\"ev\":\"B\",\"name\":\"a\",\"ts\":-1,\"args\":{}}",
            "{\"ev\":\"B\",\"name\":\"a\",\"ts\":0,\"args\":{\"k\":}}",
            "{\"ev\":\"B\",\"name\":\"a\",\"ts\":0,\"args\":{}}trailing",
            "{\"ev\":\"B\",\"name\":\"unterminated",
            "{\"ev\":\"B\",\"name\":\"a\",\"ts\":0,\"args\":{\"k\":\"\\u12\"}}",
        ] {
            let err = trace_from_jsonl(bad).expect_err(bad);
            assert!(err.starts_with("trace line 1:"), "{err}");
        }
    }

    #[test]
    fn strip_timing_zeroes_only_timing_values() {
        let line = r#"{"ev":"C","name":"pass","ts":123456,"args":{"cut_after":31,"dur_ns":987,"wall_secs":0.25,"cpu_secs":1.5,"fill_ms":0.2}}"#;
        let stripped = strip_timing(line);
        assert_eq!(
            stripped,
            r#"{"ev":"C","name":"pass","ts":0,"args":{"cut_after":31,"dur_ns":0,"wall_secs":0,"cpu_secs":0,"fill_ms":0}}"#
        );
    }

    #[test]
    fn same_content_different_timing_strips_equal() {
        let _gate = crate::test_gate_lock();
        let t = sample_trace();
        let mut shifted = t.clone();
        for ev in &mut shifted.events {
            ev.ts_ns += 17_000_000;
        }
        assert_eq!(
            strip_timing(&to_jsonl(&t)),
            strip_timing(&to_jsonl(&shifted))
        );
        assert_eq!(
            strip_timing(&to_chrome_trace(&t)),
            strip_timing(&to_chrome_trace(&shifted))
        );
    }
}
