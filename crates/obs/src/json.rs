//! Minimal JSON writer and parser.
//!
//! The workspace has no serde; exporters hand-write JSON through
//! [`escape_into`] and the schema validator parses documents with
//! [`parse`]. Objects preserve key order as `Vec<(String, Json)>` pairs —
//! the determinism lint bans `HashMap`, and ordered pairs keep emitted and
//! re-parsed documents byte-stable anyway.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; trace integers fit exactly ≤ 2^53).
    Num(f64),
    /// String (unescaped).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// JSON type name used in validation error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Writes a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Writes an `f64` as JSON: integral values without a fractional part,
/// non-finite values as `null` (JSON has no NaN/Inf).
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

/// Serializes a [`Json`] value compactly (no whitespace), preserving object
/// key order. Numbers go through [`write_f64`], so a document produced by
/// the integer-only exporters re-serializes byte-identically after
/// [`parse`] — the round-trip property the report tests assert.
pub fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_f64(out, *n),
        Json::Str(s) => write_str(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// [`write_value`] into a fresh string.
pub fn to_string(v: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

/// Parses a JSON document. Returns an error message with a byte offset on
/// malformed input; trailing non-whitespace after the value is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogates are not recombined; traces never emit them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-3.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn escape_round_trips() {
        let original = "quote \" backslash \\ newline \n tab \t ctrl \u{1} unicode é";
        let mut buf = String::new();
        write_str(&mut buf, original);
        let parsed = parse(&buf).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn compact_documents_round_trip_bytewise() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true},"e":null,"f":[]}"#;
        let parsed = parse(doc).unwrap();
        assert_eq!(to_string(&parsed), doc);
        let again = parse(&to_string(&parsed)).unwrap();
        assert_eq!(again, parsed);
    }

    #[test]
    fn write_f64_formats() {
        let mut s = String::new();
        write_f64(&mut s, 3.0);
        assert_eq!(s, "3");
        s.clear();
        write_f64(&mut s, 0.35);
        assert_eq!(s, "0.35");
        s.clear();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }
}
