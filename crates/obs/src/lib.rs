//! Deterministic structured observability for the mlpart workspace.
//!
//! The multilevel pipeline's behavior is governed by per-level dynamics the
//! paper only reports in aggregate: how the matching ratio shapes the
//! hierarchy, how FM/CLIP passes converge at each uncoarsening level, and
//! where time actually goes. This crate is the measurement substrate: a
//! zero-dependency tracing layer the algorithm crates hook into behind
//! per-crate `obs` cargo features plus an `MLPART_TRACE=1` environment gate
//! (mirroring `mlpart-audit`'s gating exactly).
//!
//! # Determinism contract
//!
//! Trace **content** — event kinds, names, nesting, and every argument
//! value — is a pure function of `(netlist, config, seed)`: counters record
//! deterministic algorithm state (moves attempted/kept/rolled back, gain
//! distributions, bucket occupancy, matching pass sizes, rebalance work),
//! never anything derived from timing or scheduling. Only the `ts`/`dur_ns`
//! timestamp fields vary between runs; [`export::strip_timing`] normalizes
//! them so two traces can be compared byte-for-byte. The parallel execution
//! layer merges per-worker streams by start index, so the merged stream is
//! also identical at every thread count.
//!
//! Timing itself flows through exactly one monotonic-clock site
//! ([`clock::now_ns`]) — the only file in this crate on the lint
//! wall-clock whitelist.
//!
//! # Profiling layer
//!
//! On top of the raw trace sit derived, equally deterministic views:
//! [`metrics`] folds counter events into a fixed-bucket registry,
//! [`profile`] rolls the span tree up into per-phase self/total time (and,
//! under the `obs-alloc` feature, per-phase allocation tallies from the
//! tracking global allocator in [`alloc`](crate)), and
//! [`profile::to_folded`] exports flamegraph-compatible folded stacks. The
//! [`diff`] module (surfaced as the `obs-diff` binary) compares two
//! artifacts: normative content must match byte-for-byte after
//! [`export::strip_profile`], and per-phase telemetry ratios past a
//! threshold flag a regression.
//!
//! # Recording model
//!
//! Events are recorded into a thread-local [`trace::Recorder`] installed by
//! [`capture`]. Instrumentation hooks ([`span`], [`counter`]) are no-ops
//! unless the runtime gate is on *and* a recorder is installed on the
//! current thread, so a library user who never captures pays one atomic
//! load per hook at most.
//!
//! ```
//! use mlpart_obs as obs;
//!
//! obs::force_enabled(true);
//! let (value, trace) = obs::capture(|| {
//!     let _run = obs::span("run", &[("runs", obs::V::U(1))]);
//!     obs::counter("pass", &[("cut_before", obs::V::U(40)), ("cut_after", obs::V::U(31))]);
//!     42
//! });
//! obs::force_enabled(false);
//! let trace = trace.expect("recording was forced on");
//! assert_eq!(value, 42);
//! assert_eq!(trace.events.len(), 3); // span begin + counter + span end
//! let jsonl = obs::export::to_jsonl(&trace);
//! assert!(obs::export::strip_timing(&jsonl).contains("\"cut_after\":31"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(feature = "obs-alloc")]
pub mod alloc;
pub mod clock;
pub mod diff;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod schema;
pub mod trace;

pub use export::{
    strip_folded, strip_profile, strip_timing, to_chrome_trace, to_jsonl, trace_from_jsonl,
};
pub use profile::to_folded;
pub use trace::{
    append_raw, append_trace, capture, counter, recording, span, EvKind, Event, SpanGuard, Trace, V,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

// Runtime gate: 0 = follow MLPART_TRACE, 1 = forced on, 2 = forced off.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// True when observability hooks should record.
///
/// Reads `MLPART_TRACE` once (`"1"` enables) and caches the answer, so the
/// per-hook cost inside refinement loops is one atomic load. Tests and the
/// CLI (`--trace-out`/`--report-out`) may override the environment with
/// [`force_enabled`].
pub fn enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => return true,
        2 => return false,
        _ => {}
    }
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("MLPART_TRACE").is_ok_and(|v| v == "1"))
}

/// Overrides the `MLPART_TRACE` environment gate for the whole process.
///
/// `false` returns to following the environment (rather than forcing
/// tracing off), so a test binary running under `MLPART_TRACE=1` keeps
/// tracing after a forced-on test finishes. Affects every thread.
pub fn force_enabled(on: bool) {
    FORCE.store(if on { 1 } else { 0 }, Ordering::Relaxed);
}

/// Serializes unit tests that flip the process-global [`force_enabled`]
/// gate, which would otherwise race under the parallel test runner.
#[cfg(test)]
pub(crate) fn test_gate_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Forces the gate *off* even when the test binary runs under
/// `MLPART_TRACE=1` (CI's traced suite does), for tests asserting disabled
/// behavior. Restore with [`force_enabled`].
#[cfg(test)]
pub(crate) fn force_off_for_test() {
    FORCE.store(2, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_gate_round_trips() {
        let _gate = test_gate_lock();
        force_enabled(true);
        assert!(enabled());
        force_enabled(false);
        // Back to the environment; tests run without MLPART_TRACE unless CI
        // sets it, so only assert the forced-on path deterministically.
    }
}
