//! Deterministic metrics registry derived from a captured trace.
//!
//! A [`Registry`] folds a trace's counter events into one [`Metric`] per
//! `(counter name, argument key)` pair: occurrence count, sum, min/max, the
//! last observed value (gauge semantics), and a histogram over fixed log2
//! bucket edges. Every field is a pure function of trace *content* — the
//! fold never looks at timestamps, and the non-normative argument keys
//! (timing and allocation telemetry) are excluded up front — so a registry
//! built from a merged multi-thread trace is bit-identical to the
//! single-thread one, inheriting the start-order merge contract of
//! [`crate::append_trace`].
//!
//! # Log2 bucket edges
//!
//! Bucket `b` of a histogram counts samples whose magnitude has bit length
//! `b`: bucket 0 holds the value 0, bucket 1 holds 1, bucket 2 holds 2–3,
//! bucket `b` holds `[2^(b-1), 2^b)`. The edges are fixed by the u64 value
//! domain (65 buckets), never adapted to the data, so two histograms of the
//! same samples are always identical — the property that lets the
//! determinism suites compare serialized registries byte-for-byte.

use crate::export::is_non_normative_key;
use crate::json;
use crate::trace::{EvKind, Trace, V};

/// Number of log2 buckets: bit lengths 0 (the value 0) through 64.
pub const LOG2_BUCKETS: usize = 65;

/// The histogram bucket index for a sample magnitude: its bit length.
pub fn bucket_of(magnitude: u64) -> usize {
    (u64::BITS - magnitude.leading_zeros()) as usize
}

/// Aggregated samples of one `(counter name, argument key)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metric {
    /// `counter.arg` — e.g. `fm_pass.kept`.
    pub name: String,
    /// Number of samples folded in.
    pub count: u64,
    /// Saturating sum of the sample values.
    pub sum: i64,
    /// Smallest sample.
    pub min: i64,
    /// Largest sample.
    pub max: i64,
    /// Last sample in trace order (gauge reading).
    pub last: i64,
    /// Log2 histogram over sample magnitudes; `buckets[b]` counts samples
    /// with bit length `b` (see [`bucket_of`]).
    pub buckets: [u64; LOG2_BUCKETS],
}

impl Metric {
    fn new(name: String) -> Self {
        Metric {
            name,
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
            last: 0,
            buckets: [0; LOG2_BUCKETS],
        }
    }

    /// Folds one sample in.
    pub fn record(&mut self, value: i64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
        self.buckets[bucket_of(value.unsigned_abs())] += 1;
    }

    /// Serializes as a JSON object. Buckets are emitted sparsely as
    /// `[bit_length, count]` pairs in ascending bucket order.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        json::write_str(out, &self.name);
        out.push_str(&format!(
            ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"last\":{},\"log2\":[",
            self.count, self.sum, self.min, self.max, self.last
        ));
        let mut first = true;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("[{b},{n}]"));
            }
        }
        out.push_str("]}");
    }
}

/// Deterministic registry: one [`Metric`] per counter argument, in first
/// appearance order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    /// The metrics, ordered by first appearance in the trace.
    pub metrics: Vec<Metric>,
}

impl Registry {
    /// Folds every counter event of `trace` into a registry.
    ///
    /// Only integer-valued arguments (`V::U`/`V::I`) participate: `f64`
    /// args are configuration echoes and static labels carry no magnitude.
    /// Keys on the non-normative list (timing, allocation) are skipped so
    /// the registry stays a pure function of content.
    pub fn from_trace(trace: &Trace) -> Registry {
        let mut reg = Registry::default();
        for ev in &trace.events {
            if ev.kind != EvKind::Counter {
                continue;
            }
            for (key, value) in &ev.args {
                if is_non_normative_key(key) {
                    continue;
                }
                let value = match value {
                    V::U(n) => i64::try_from(*n).unwrap_or(i64::MAX),
                    V::I(n) => *n,
                    V::F(_) | V::S(_) => continue,
                };
                reg.record(ev.name, key, value);
            }
        }
        reg
    }

    /// Folds one sample into the `(counter, arg)` metric, creating it on
    /// first appearance.
    pub fn record(&mut self, counter: &str, arg: &str, value: i64) {
        let name = format!("{counter}.{arg}");
        let metric = match self.metrics.iter_mut().position(|m| m.name == name) {
            Some(i) => &mut self.metrics[i],
            None => {
                self.metrics.push(Metric::new(name));
                self.metrics.last_mut().expect("just pushed")
            }
        };
        metric.record(value);
    }

    /// Serializes the registry as a JSON array (the `metrics` section of a
    /// `mlpart-run-report-v3` document).
    pub fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            m.write_json(out);
        }
        out.push(']');
    }

    /// [`Registry::write_json`] into a fresh string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{capture, counter, span};

    #[test]
    fn bucket_edges_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    fn sample() -> Trace {
        crate::force_enabled(true);
        let (_, t) = capture(|| {
            let _run = span("run", &[("runs", V::U(2))]);
            for i in 0..3u64 {
                counter(
                    "fm_pass",
                    &[
                        ("kept", V::U(4 + i)),
                        ("gain", V::I(-2 + i as i64)),
                        ("ratio", V::F(0.35)),
                        ("fill_ms", V::F(1.25)),
                    ],
                );
            }
        });
        crate::force_enabled(false);
        t.expect("recorded")
    }

    #[test]
    fn registry_folds_counters_in_first_appearance_order() {
        let _gate = crate::test_gate_lock();
        let reg = Registry::from_trace(&sample());
        let names: Vec<&str> = reg.metrics.iter().map(|m| m.name.as_str()).collect();
        // F-valued args (ratio, fill_ms) are skipped; span args don't count.
        assert_eq!(names, ["fm_pass.kept", "fm_pass.gain"]);
        let kept = &reg.metrics[0];
        assert_eq!(
            (kept.count, kept.sum, kept.min, kept.max, kept.last),
            (3, 15, 4, 6, 6)
        );
        assert_eq!(kept.buckets[3], 3, "4,5,6 all have bit length 3");
        let gain = &reg.metrics[1];
        assert_eq!((gain.min, gain.max, gain.sum), (-2, 0, -3));
        assert_eq!(gain.buckets[0], 1, "the value 0");
        assert_eq!(gain.buckets[1], 1, "|-1| = 1");
        assert_eq!(gain.buckets[2], 1, "|-2| = 2");
    }

    #[test]
    fn registry_json_is_stable_and_sparse() {
        let _gate = crate::test_gate_lock();
        let reg = Registry::from_trace(&sample());
        let doc = reg.to_json();
        assert_eq!(doc, reg.to_json(), "serialization is deterministic");
        let parsed = crate::json::parse(&doc).expect("valid JSON");
        let arr = parsed.as_arr().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("fm_pass.kept"));
        let log2 = arr[0].get("log2").unwrap().as_arr().unwrap();
        assert_eq!(log2.len(), 1, "sparse: only the populated bucket");
    }

    #[test]
    fn identical_content_yields_identical_registries() {
        let _gate = crate::test_gate_lock();
        let a = sample();
        let mut b = sample();
        for ev in &mut b.events {
            ev.ts_ns += 5_000_000; // timing shifts never reach the registry
        }
        assert_eq!(Registry::from_trace(&a), Registry::from_trace(&b));
    }
}
