//! Phase-attributed cost rollups computed from the span tree.
//!
//! [`phase_rollup`] aggregates a captured trace by span name: how many
//! times each phase ran (normative content), its total and *self* time
//! (total minus time in child spans), and — in `obs-alloc` builds — the
//! self-attributed allocation traffic and peak live-bytes growth. The same
//! rollup is recomputed from already-serialized documents
//! ([`phases_from_report`], [`phases_from_jsonl`], [`phases_from_chrome`])
//! so `obs-diff` can compare any two artifacts without re-running anything.
//!
//! [`to_folded`] renders the tree in the folded-stack text format
//! (`frame;frame;frame value`) consumed by `inferno` and Brendan Gregg's
//! `flamegraph.pl`; the sample value is self-time in nanoseconds.
//!
//! # Determinism
//!
//! Phase *names, order, and counts* are trace content: bit-identical for a
//! fixed `(netlist, config, seed)` at every thread count (the capture merge
//! appends per-start streams in start order). Times and alloc tallies are
//! telemetry — `strip_timing`/`strip_profile` zero or remove them before
//! any equality comparison, and the folded export has `strip_folded`.

use crate::json::{self, Json};
use crate::report::{SpanNode, SpanTree};
use crate::trace::{Trace, V};

/// Aggregated cost of one phase (all spans sharing a name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Span name.
    pub name: String,
    /// Number of spans with this name (normative).
    pub count: u64,
    /// Summed inclusive duration (non-normative). Nested same-name spans
    /// each contribute their inclusive time.
    pub total_ns: u64,
    /// Summed self time: inclusive minus time inside child spans
    /// (non-normative).
    pub self_ns: u64,
    /// Self-attributed allocated bytes (inclusive minus children); zero
    /// without `obs-alloc`.
    pub alloc_bytes: u64,
    /// Self-attributed allocation count; zero without `obs-alloc`.
    pub alloc_count: u64,
    /// Largest single-span peak of live-bytes growth; zero without
    /// `obs-alloc`.
    pub alloc_peak: u64,
}

/// An owned span node — the common shape the rollup walks, whether the
/// source is an in-memory [`SpanTree`] or a parsed JSON document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OwnedNode {
    /// Span name.
    pub name: String,
    /// Inclusive duration in nanoseconds.
    pub dur_ns: u64,
    /// Inclusive allocated bytes (0 when untracked).
    pub alloc_bytes: u64,
    /// Inclusive allocation count (0 when untracked).
    pub alloc_count: u64,
    /// Peak live-bytes growth during the span (0 when untracked).
    pub alloc_peak: u64,
    /// Child spans in execution order.
    pub children: Vec<OwnedNode>,
}

fn arg_u64(args: &[(&'static str, V)], key: &str) -> u64 {
    args.iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            V::U(n) => Some(*n),
            V::I(n) => u64::try_from(*n).ok(),
            _ => None,
        })
        .unwrap_or(0)
}

fn node_from_span(span: &SpanNode) -> OwnedNode {
    OwnedNode {
        name: span.name.to_string(),
        dur_ns: span.dur_ns,
        alloc_bytes: arg_u64(&span.args, "alloc_bytes"),
        alloc_count: arg_u64(&span.args, "alloc_count"),
        alloc_peak: arg_u64(&span.args, "alloc_peak"),
        children: span.children.iter().map(node_from_span).collect(),
    }
}

fn fold_node(node: &OwnedNode, phases: &mut Vec<PhaseAgg>) {
    let child_dur: u64 = node.children.iter().map(|c| c.dur_ns).sum();
    let child_bytes: u64 = node.children.iter().map(|c| c.alloc_bytes).sum();
    let child_count: u64 = node.children.iter().map(|c| c.alloc_count).sum();
    let slot = match phases.iter_mut().position(|p| p.name == node.name) {
        Some(i) => &mut phases[i],
        None => {
            phases.push(PhaseAgg {
                name: node.name.clone(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
                alloc_bytes: 0,
                alloc_count: 0,
                alloc_peak: 0,
            });
            phases.last_mut().expect("just pushed")
        }
    };
    slot.count += 1;
    slot.total_ns += node.dur_ns;
    slot.self_ns += node.dur_ns.saturating_sub(child_dur);
    slot.alloc_bytes += node.alloc_bytes.saturating_sub(child_bytes);
    slot.alloc_count += node.alloc_count.saturating_sub(child_count);
    slot.alloc_peak = slot.alloc_peak.max(node.alloc_peak);
    for child in &node.children {
        fold_node(child, phases);
    }
}

/// Rolls a forest of owned nodes up into per-phase aggregates, in first
/// appearance (pre-order) order.
pub fn rollup_nodes(nodes: &[OwnedNode]) -> Vec<PhaseAgg> {
    let mut phases = Vec::new();
    for node in nodes {
        fold_node(node, &mut phases);
    }
    phases
}

/// Converts a rebuilt [`SpanTree`] into owned nodes (alloc args, recorded
/// on span `End` events, are read from the merged node args).
pub fn nodes_from_tree(tree: &SpanTree) -> Vec<OwnedNode> {
    tree.spans.iter().map(node_from_span).collect()
}

/// Rolls a captured trace up into per-phase aggregates.
pub fn phase_rollup(trace: &Trace) -> Vec<PhaseAgg> {
    rollup_nodes(&nodes_from_tree(&crate::report::build_tree(trace)))
}

/// Serializes phase aggregates as the `profile.phases` JSON array of a
/// `mlpart-run-report-v3` document.
pub fn write_phases_json(out: &mut String, phases: &[PhaseAgg]) {
    out.push('[');
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"phase\":");
        json::write_str(out, &p.name);
        out.push_str(&format!(
            ",\"count\":{},\"total_ns\":{},\"self_ns\":{},\"alloc_bytes\":{},\
             \"alloc_count\":{},\"alloc_peak\":{}}}",
            p.count, p.total_ns, p.self_ns, p.alloc_bytes, p.alloc_count, p.alloc_peak
        ));
    }
    out.push(']');
}

// ---------------------------------------------------------------------
// Re-deriving the rollup from serialized documents (obs-diff's parsers).
// ---------------------------------------------------------------------

fn json_u64(obj: &Json, key: &str) -> u64 {
    obj.get(key).and_then(Json::as_num).map_or(0, |n| n as u64)
}

fn node_from_json(span: &Json) -> Result<OwnedNode, String> {
    let name = span
        .get("name")
        .and_then(Json::as_str)
        .ok_or("span node without a name")?
        .to_string();
    let args = span.get("args");
    let alloc = |key: &str| args.map_or(0, |a| json_u64(a, key));
    let mut children = Vec::new();
    if let Some(Json::Arr(kids)) = span.get("children") {
        for kid in kids {
            children.push(node_from_json(kid)?);
        }
    }
    Ok(OwnedNode {
        name,
        dur_ns: json_u64(span, "dur_ns"),
        alloc_bytes: alloc("alloc_bytes"),
        alloc_count: alloc("alloc_count"),
        alloc_peak: alloc("alloc_peak"),
        children,
    })
}

/// Extracts per-phase aggregates from a parsed run report (v2 or v3): the
/// rollup is recomputed from the `spans` tree, so v2 documents — which
/// predate the `profile` section — diff exactly like v3 ones.
pub fn phases_from_report(doc: &Json) -> Result<Vec<PhaseAgg>, String> {
    let spans = doc
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("report without a spans array")?;
    let mut nodes = Vec::new();
    for span in spans {
        nodes.push(node_from_json(span)?);
    }
    Ok(rollup_nodes(&nodes))
}

/// Builds an owned forest from a flat Begin/End event stream. Tolerant of
/// imbalance the same way `build_tree` is: stray `End`s are dropped, spans
/// left open close at the last seen timestamp.
fn forest_from_events(events: &[(char, String, u64, Option<Json>)]) -> Vec<OwnedNode> {
    let mut forest: Vec<OwnedNode> = Vec::new();
    // (node, begin_ts)
    let mut stack: Vec<(OwnedNode, u64)> = Vec::new();
    let last_ts = events.last().map_or(0, |e| e.2);
    let close = |stack: &mut Vec<(OwnedNode, u64)>,
                 forest: &mut Vec<OwnedNode>,
                 ts: u64,
                 args: Option<&Json>| {
        if let Some((mut node, t0)) = stack.pop() {
            node.dur_ns = ts.saturating_sub(t0);
            if let Some(args) = args {
                node.alloc_bytes = json_u64(args, "alloc_bytes");
                node.alloc_count = json_u64(args, "alloc_count");
                node.alloc_peak = json_u64(args, "alloc_peak");
            }
            match stack.last_mut() {
                Some((parent, _)) => parent.children.push(node),
                None => forest.push(node),
            }
        }
    };
    for (kind, name, ts, args) in events {
        match kind {
            'B' => stack.push((
                OwnedNode {
                    name: name.clone(),
                    ..OwnedNode::default()
                },
                *ts,
            )),
            'E' => close(&mut stack, &mut forest, *ts, args.as_ref()),
            _ => {}
        }
    }
    while !stack.is_empty() {
        close(&mut stack, &mut forest, last_ts, None);
    }
    forest
}

/// Extracts per-phase aggregates from a JSONL trace export
/// (`{"ev":"B"|"E"|"C","name":...,"ts":...,"args":{...}}` per line).
pub fn phases_from_jsonl(text: &str) -> Result<Vec<PhaseAgg>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = ev
            .get("ev")
            .and_then(Json::as_str)
            .and_then(|s| s.chars().next())
            .ok_or_else(|| format!("line {}: missing ev", i + 1))?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing name", i + 1))?
            .to_string();
        let ts = json_u64(&ev, "ts");
        events.push((kind, name, ts, ev.get("args").cloned()));
    }
    Ok(rollup_nodes(&forest_from_events(&events)))
}

/// Extracts per-phase aggregates from a Chrome Trace Event document.
/// Timestamps are microseconds in that format; durations are reported in
/// nanoseconds for consistency with the other sources.
pub fn phases_from_chrome(doc: &Json) -> Result<Vec<PhaseAgg>, String> {
    let raw = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("chrome trace without traceEvents")?;
    let mut events = Vec::new();
    for ev in raw {
        let kind = ev
            .get("ph")
            .and_then(Json::as_str)
            .and_then(|s| s.chars().next())
            .ok_or("trace event without ph")?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or("trace event without name")?
            .to_string();
        let ts = json_u64(ev, "ts") * 1_000;
        events.push((kind, name, ts, ev.get("args").cloned()));
    }
    Ok(rollup_nodes(&forest_from_events(&events)))
}

// ---------------------------------------------------------------------
// Folded-stack export.
// ---------------------------------------------------------------------

fn fold_stacks(node: &OwnedNode, prefix: &str, lines: &mut Vec<(String, u64)>) {
    let stack = if prefix.is_empty() {
        node.name.clone()
    } else {
        format!("{prefix};{}", node.name)
    };
    let child_dur: u64 = node.children.iter().map(|c| c.dur_ns).sum();
    let self_ns = node.dur_ns.saturating_sub(child_dur);
    match lines.iter_mut().find(|(s, _)| *s == stack) {
        Some((_, v)) => *v += self_ns,
        None => lines.push((stack.clone(), self_ns)),
    }
    for child in &node.children {
        fold_stacks(child, &stack, lines);
    }
}

/// Renders a trace in the folded-stack text format (`a;b;c value`, one line
/// per distinct stack, value = self-time nanoseconds), compatible with
/// `inferno-flamegraph` and `flamegraph.pl`.
///
/// Stacks are emitted in first-appearance order and merged by identity, so
/// the *set and order of lines* is trace content (thread-count invariant);
/// only the sample values vary. [`crate::export::strip_folded`] zeroes them
/// for content comparison.
pub fn to_folded(trace: &Trace) -> String {
    let nodes = nodes_from_tree(&crate::report::build_tree(trace));
    let mut lines = Vec::new();
    for node in &nodes {
        fold_stacks(node, "", &mut lines);
    }
    let mut out = String::new();
    for (stack, value) in lines {
        out.push_str(&format!("{stack} {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{strip_folded, strip_profile};
    use crate::trace::{capture, counter, span};

    fn sample() -> Trace {
        crate::force_enabled(true);
        let (_, t) = capture(|| {
            let _run = span("run", &[("runs", V::U(1))]);
            for i in 0..2u64 {
                let _lvl = span("level", &[("level", V::U(i))]);
                counter("fm_pass", &[("kept", V::U(3 + i))]);
                let _fm = span("fm_refine", &[]);
            }
        });
        crate::force_enabled(false);
        t.expect("recorded")
    }

    #[test]
    fn rollup_counts_and_order_are_content() {
        let _gate = crate::test_gate_lock();
        let phases = phase_rollup(&sample());
        let summary: Vec<(&str, u64)> = phases.iter().map(|p| (p.name.as_str(), p.count)).collect();
        assert_eq!(
            summary,
            [("run", 1), ("level", 2), ("fm_refine", 2)],
            "first-appearance order with per-name counts"
        );
    }

    #[test]
    fn self_time_excludes_children() {
        let _gate = crate::test_gate_lock();
        let phases = phase_rollup(&sample());
        let run = &phases[0];
        let level = &phases[1];
        let fm = &phases[2];
        assert!(run.total_ns >= level.total_ns, "run encloses the levels");
        assert!(level.total_ns >= fm.total_ns, "levels enclose refinement");
        assert!(
            run.self_ns <= run.total_ns && level.self_ns <= level.total_ns,
            "self never exceeds total"
        );
        // Self times of a rooted tree partition the root's total.
        let self_sum: u64 = phases.iter().map(|p| p.self_ns).sum();
        assert_eq!(self_sum, run.total_ns, "self times partition the total");
    }

    #[test]
    fn folded_stacks_have_stable_frames() {
        let _gate = crate::test_gate_lock();
        let folded = to_folded(&sample());
        let stacks: Vec<&str> = folded
            .lines()
            .map(|l| l.rsplit_once(' ').expect("value-terminated").0)
            .collect();
        assert_eq!(
            stacks,
            ["run", "run;level", "run;level;fm_refine"],
            "merged stacks in first-appearance order"
        );
        assert_eq!(
            strip_folded(&folded),
            "run 0\nrun;level 0\nrun;level;fm_refine 0\n"
        );
    }

    #[test]
    fn report_and_jsonl_rollups_match_in_memory() {
        let _gate = crate::test_gate_lock();
        let t = sample();
        let direct = phase_rollup(&t);
        let from_jsonl = phases_from_jsonl(&crate::export::to_jsonl(&t)).expect("parses");
        assert_eq!(direct, from_jsonl, "jsonl round-trip preserves the rollup");
        let report = crate::report::RunReport {
            meta: vec![("algo", V::S("ml-c"))],
            cuts: vec![7],
            failures: Vec::new(),
            truncations: Vec::new(),
            retries: Vec::new(),
            repairs: Vec::new(),
            wall_secs: 0.1,
            cpu_secs: 0.1,
            trace: t.clone(),
        };
        let doc = json::parse(&report.to_json()).expect("valid report");
        let from_report = phases_from_report(&doc).expect("report rollup");
        assert_eq!(
            direct, from_report,
            "report round-trip preserves the rollup"
        );
        // Chrome timestamps are truncated to µs — compare content only.
        let chrome = json::parse(&crate::export::to_chrome_trace(&t)).expect("valid chrome");
        let from_chrome = phases_from_chrome(&chrome).expect("chrome rollup");
        let names = |ps: &[PhaseAgg]| -> Vec<(String, u64)> {
            ps.iter().map(|p| (p.name.clone(), p.count)).collect()
        };
        assert_eq!(names(&direct), names(&from_chrome));
    }

    #[test]
    fn strip_profile_removes_alloc_and_zeroes_sched() {
        let line = r#"{"args":{"alloc_bytes":123,"alloc_count":4,"alloc_peak":99,"kept":7},"threads":8,"alloc_tracked":1}"#;
        assert_eq!(
            strip_profile(line),
            r#"{"args":{"kept":7},"threads":0,"alloc_tracked":0}"#
        );
    }
}
