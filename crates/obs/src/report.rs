//! Machine-readable run reports built from captured traces.
//!
//! A [`RunReport`] pairs the flat event stream with run-level metadata
//! (algorithm, seed, per-start cuts, total timing) and serializes as a
//! single JSON document (`schema: "mlpart-run-report-v3"`, which extends v2
//! with a per-phase `profile` rollup and a deterministic `metrics`
//! registry; [`parse_report`] loads both versions). The span tree is
//! rebuilt from `Begin`/`End` bracketing; [`level_rows`] renders the same
//! per-level table the CLI's `--stats` flag has always printed, now derived
//! from trace content instead of ad-hoc plumbing.

use crate::export;
use crate::json;
use crate::trace::{EvKind, Trace, V};

/// A point counter sample attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Counter name.
    pub name: &'static str,
    /// Timestamp (non-normative).
    pub ts_ns: u64,
    /// Deterministic values.
    pub args: Vec<(&'static str, V)>,
}

/// One reconstructed span with its nested structure.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: &'static str,
    /// Begin timestamp (non-normative).
    pub ts_ns: u64,
    /// Duration in nanoseconds (non-normative).
    pub dur_ns: u64,
    /// Arguments recorded at `Begin`.
    pub args: Vec<(&'static str, V)>,
    /// Counters sampled directly inside this span.
    pub counters: Vec<CounterSample>,
    /// Child spans in execution order.
    pub children: Vec<SpanNode>,
}

/// A trace reassembled into its span hierarchy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTree {
    /// Top-level spans.
    pub spans: Vec<SpanNode>,
    /// Counters recorded outside any span.
    pub counters: Vec<CounterSample>,
}

/// Rebuilds the span hierarchy from a flat event stream.
///
/// Tolerant of imbalance (a truncated capture): an `End` with no open span
/// is dropped, and spans still open at the end of the stream are closed at
/// the final event's timestamp. Args recorded on the `End` event (the
/// `alloc_*` telemetry in `obs-alloc` builds) are merged into the node's
/// args after the `Begin` args.
pub fn build_tree(trace: &Trace) -> SpanTree {
    let mut tree = SpanTree::default();
    let mut stack: Vec<SpanNode> = Vec::new();
    let last_ts = trace.events.last().map_or(0, |e| e.ts_ns);
    let close = |stack: &mut Vec<SpanNode>,
                 tree: &mut SpanTree,
                 ts_ns: u64,
                 end_args: &[(&'static str, V)]| {
        if let Some(mut node) = stack.pop() {
            node.dur_ns = ts_ns.saturating_sub(node.ts_ns);
            node.args.extend_from_slice(end_args);
            match stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => tree.spans.push(node),
            }
        }
    };
    for ev in &trace.events {
        match ev.kind {
            EvKind::Begin => stack.push(SpanNode {
                name: ev.name,
                ts_ns: ev.ts_ns,
                dur_ns: 0,
                args: ev.args.clone(),
                counters: Vec::new(),
                children: Vec::new(),
            }),
            EvKind::End => close(&mut stack, &mut tree, ev.ts_ns, &ev.args),
            EvKind::Counter => {
                let sample = CounterSample {
                    name: ev.name,
                    ts_ns: ev.ts_ns,
                    args: ev.args.clone(),
                };
                match stack.last_mut() {
                    Some(parent) => parent.counters.push(sample),
                    None => tree.counters.push(sample),
                }
            }
        }
    }
    while !stack.is_empty() {
        close(&mut stack, &mut tree, last_ts, &[]);
    }
    tree
}

/// One start that panicked and was excluded from the run's statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord {
    /// The failed start's index.
    pub start: u64,
    /// The innermost span open at the panic, when known.
    pub phase: Option<String>,
    /// The panic payload message.
    pub message: String,
}

/// One start whose run was cut short by an execution budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruncationRecord {
    /// The truncated start's index.
    pub start: u64,
    /// Which budget limit fired (`"moves"`, `"passes"`, `"levels"`,
    /// `"deadline"`, or `"injected"`).
    pub limit: &'static str,
    /// Checkpoint site where the limit fired (`"pass"` or `"level"`).
    pub site: &'static str,
    /// Hierarchy level at the truncation point, when known.
    pub level: Option<u64>,
    /// Refinement pass at the truncation point, when known.
    pub pass: Option<u64>,
}

/// One failed attempt the supervisor absorbed by retrying the start from
/// its next deterministic seed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryReportRecord {
    /// The start whose attempt failed.
    pub start: u64,
    /// The failed attempt index (0-based).
    pub attempt: u64,
    /// The innermost span open at the panic, when known.
    pub phase: Option<String>,
    /// The panic payload message.
    pub message: String,
}

/// One start whose final partition violated its balance constraints and was
/// driven back to feasibility by the deterministic greedy repair pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReportRecord {
    /// The repaired start's index.
    pub start: u64,
    /// Moves the repair pass applied.
    pub moves: u64,
    /// Cut entering repair.
    pub cut_before: u64,
    /// Cut after repair.
    pub cut_after: u64,
    /// Whether repair reached feasibility (an infeasible record means the
    /// start's output was discarded).
    pub feasible: bool,
}

/// A run's machine-readable report: metadata + cuts + timing + span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Run metadata (algorithm, k, seed, runs, threads, circuit, …).
    pub meta: Vec<(&'static str, V)>,
    /// Final cut per start, in start order (surviving starts only).
    pub cuts: Vec<u64>,
    /// Starts that panicked, in start order (empty on a healthy run).
    pub failures: Vec<FailureRecord>,
    /// Starts cut short by an execution budget, in start order.
    pub truncations: Vec<TruncationRecord>,
    /// Attempt failures absorbed by supervised retries, in (start, attempt)
    /// order (empty when supervision is off or nothing failed).
    pub retries: Vec<RetryReportRecord>,
    /// Balance repairs applied to constraint-violating outputs, in start
    /// order (empty when every start finished feasible).
    pub repairs: Vec<RepairReportRecord>,
    /// Total wall-clock seconds (non-normative).
    pub wall_secs: f64,
    /// Summed per-start CPU seconds (non-normative).
    pub cpu_secs: f64,
    /// The captured run trace (merged across workers in start order).
    pub trace: Trace,
}

fn write_counter(out: &mut String, c: &CounterSample) {
    out.push_str("{\"name\":");
    json::write_str(out, c.name);
    out.push_str(&format!(",\"ts\":{}", c.ts_ns));
    out.push_str(",\"args\":");
    export::write_args(out, &c.args);
    out.push('}');
}

fn write_node(out: &mut String, node: &SpanNode) {
    out.push_str("{\"name\":");
    json::write_str(out, node.name);
    out.push_str(&format!(
        ",\"ts\":{},\"dur_ns\":{}",
        node.ts_ns, node.dur_ns
    ));
    out.push_str(",\"args\":");
    export::write_args(out, &node.args);
    out.push_str(",\"counters\":[");
    for (i, c) in node.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_counter(out, c);
    }
    out.push_str("],\"children\":[");
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_node(out, child);
    }
    out.push_str("]}");
}

fn write_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(n) => out.push_str(&format!("{n}")),
        None => out.push_str("null"),
    }
}

impl RunReport {
    /// Serializes the report as a `mlpart-run-report-v3` JSON document.
    ///
    /// v2 extended v1 with the `failures` and `truncations` arrays; v3 adds
    /// the `profile` section (per-phase time/alloc rollup from the span
    /// tree, `alloc_tracked` flagging whether an `obs-alloc` allocator was
    /// compiled in), the `metrics` array (the deterministic
    /// counter-argument registry), and the crash-safety arrays `retries`
    /// (attempt failures absorbed by the supervisor) and `repairs` (balance
    /// repairs applied to infeasible outputs). Consumers that ignore
    /// unknown keys keep working; [`parse_report`] still loads committed v2
    /// documents.
    pub fn to_json(&self) -> String {
        let tree = build_tree(&self.trace);
        let mut out = String::from("{\"schema\":\"mlpart-run-report-v3\",\"meta\":");
        export::write_args(&mut out, &self.meta);
        let min = self.cuts.iter().copied().min().unwrap_or(0);
        let max = self.cuts.iter().copied().max().unwrap_or(0);
        let avg = if self.cuts.is_empty() {
            0.0
        } else {
            self.cuts.iter().sum::<u64>() as f64 / self.cuts.len() as f64
        };
        out.push_str(&format!(",\"cut\":{{\"min\":{min},\"max\":{max},\"avg\":"));
        json::write_f64(&mut out, avg);
        out.push_str(",\"per_start\":[");
        for (i, c) in self.cuts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{c}"));
        }
        out.push_str("]},\"failures\":[");
        for (i, rec) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"start\":{},\"phase\":", rec.start));
            match &rec.phase {
                Some(p) => json::write_str(&mut out, p),
                None => out.push_str("null"),
            }
            out.push_str(",\"message\":");
            json::write_str(&mut out, &rec.message);
            out.push('}');
        }
        out.push_str("],\"truncations\":[");
        for (i, rec) in self.truncations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"start\":{},\"limit\":", rec.start));
            json::write_str(&mut out, rec.limit);
            out.push_str(",\"site\":");
            json::write_str(&mut out, rec.site);
            out.push_str(",\"level\":");
            write_opt_u64(&mut out, rec.level);
            out.push_str(",\"pass\":");
            write_opt_u64(&mut out, rec.pass);
            out.push('}');
        }
        out.push_str("],\"retries\":[");
        for (i, rec) in self.retries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"start\":{},\"attempt\":{},\"phase\":",
                rec.start, rec.attempt
            ));
            match &rec.phase {
                Some(p) => json::write_str(&mut out, p),
                None => out.push_str("null"),
            }
            out.push_str(",\"message\":");
            json::write_str(&mut out, &rec.message);
            out.push('}');
        }
        out.push_str("],\"repairs\":[");
        for (i, rec) in self.repairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"start\":{},\"moves\":{},\"cut_before\":{},\"cut_after\":{},\"feasible\":{}}}",
                rec.start,
                rec.moves,
                rec.cut_before,
                rec.cut_after,
                if rec.feasible { "true" } else { "false" }
            ));
        }
        out.push_str("],\"timing\":{\"wall_secs\":");
        json::write_f64(&mut out, self.wall_secs);
        out.push_str(",\"cpu_secs\":");
        json::write_f64(&mut out, self.cpu_secs);
        let alloc_tracked = u8::from(cfg!(feature = "obs-alloc"));
        out.push_str(&format!(
            "}},\"profile\":{{\"alloc_tracked\":{alloc_tracked},\"phases\":"
        ));
        let phases = crate::profile::rollup_nodes(&crate::profile::nodes_from_tree(&tree));
        crate::profile::write_phases_json(&mut out, &phases);
        out.push_str("},\"metrics\":");
        let registry = crate::metrics::Registry::from_trace(&self.trace);
        registry.write_json(&mut out);
        out.push_str(",\"spans\":[");
        for (i, node) in tree.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_node(&mut out, node);
        }
        out.push_str("],\"counters\":[");
        for (i, c) in tree.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_counter(&mut out, c);
        }
        out.push_str("]}");
        out
    }
}

/// A run report loaded back from its JSON serialization.
///
/// [`parse_report`] accepts both the current `mlpart-run-report-v3` format
/// and committed `mlpart-run-report-v2` documents; for v2 — which predates
/// the `profile` section — the per-phase rollup is recomputed from the
/// `spans` tree, so old baselines diff cleanly against new runs.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedReport {
    /// Schema version: 2 or 3.
    pub version: u32,
    /// Per-phase time/alloc aggregates (recomputed for v2).
    pub phases: Vec<crate::profile::PhaseAgg>,
    /// Whether the producing binary tracked allocations (`obs-alloc`);
    /// always `false` for v2.
    pub alloc_tracked: bool,
    /// The parsed document, for callers needing more than the rollup.
    pub doc: json::Json,
}

/// Parses and version-dispatches a run-report JSON document.
///
/// # Errors
///
/// Returns a message for malformed JSON, a missing/unknown `schema` tag, or
/// a structurally broken `spans` section.
pub fn parse_report(text: &str) -> Result<LoadedReport, String> {
    let doc = json::parse(text)?;
    let tag = doc
        .get("schema")
        .and_then(json::Json::as_str)
        .ok_or("document has no schema tag")?;
    let version = match tag {
        "mlpart-run-report-v2" => 2,
        "mlpart-run-report-v3" => 3,
        other => return Err(format!("unsupported report schema {other:?}")),
    };
    let phases = crate::profile::phases_from_report(&doc)?;
    let alloc_tracked = doc
        .get("profile")
        .and_then(|p| p.get("alloc_tracked"))
        .and_then(json::Json::as_num)
        == Some(1.0);
    Ok(LoadedReport {
        version,
        phases,
        alloc_tracked,
        doc,
    })
}

/// One per-level row of the `--stats` table, derived from trace content.
///
/// Field semantics match `LevelStats` in `mlpart-core`: the coarsest level
/// reports the winning initial-partitioning try, each finer level its
/// uncoarsening refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelRow {
    /// Start index this row belongs to (0 when no `start` spans exist).
    pub start: u64,
    /// Hierarchy level (coarsest first in the returned order).
    pub level: u64,
    /// Modules in this level's netlist.
    pub modules: u64,
    /// Engine objective entering refinement.
    pub cut_before: u64,
    /// Engine objective after refinement.
    pub cut_after: u64,
    /// Moves attempted across the level's passes.
    pub attempted: u64,
    /// Moves kept after rollback.
    pub kept: u64,
    /// Rebalance moves after projection to this level.
    pub rebalance_moves: u64,
    /// Refinement passes run.
    pub passes: u64,
}

fn arg_u64(args: &[(&'static str, V)], key: &str) -> Option<u64> {
    args.iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            V::U(n) => Some(*n),
            V::I(n) => u64::try_from(*n).ok(),
            _ => None,
        })
}

fn collect_pass_counters<'t>(node: &'t SpanNode, out: &mut Vec<&'t CounterSample>) {
    for c in &node.counters {
        if c.name == "fm_pass" || c.name == "kway_pass" {
            out.push(c);
        }
    }
    for child in &node.children {
        collect_pass_counters(child, out);
    }
}

fn row_from_passes(
    start: u64,
    level: u64,
    modules: u64,
    rebalance_moves: u64,
    passes: &[&CounterSample],
) -> LevelRow {
    LevelRow {
        start,
        level,
        modules,
        cut_before: passes
            .first()
            .and_then(|c| arg_u64(&c.args, "cut_before"))
            .unwrap_or(0),
        cut_after: passes
            .last()
            .and_then(|c| arg_u64(&c.args, "cut_after"))
            .unwrap_or(0),
        attempted: passes
            .iter()
            .filter_map(|c| arg_u64(&c.args, "attempted"))
            .sum(),
        kept: passes.iter().filter_map(|c| arg_u64(&c.args, "kept")).sum(),
        rebalance_moves,
        passes: passes.len() as u64,
    }
}

fn walk_levels(node: &SpanNode, start: u64, rows: &mut Vec<LevelRow>) {
    let start = match node.name {
        "start" => arg_u64(&node.args, "start").unwrap_or(start),
        _ => start,
    };
    match node.name {
        "initial" => {
            // The coarsest-level row comes from the *winning* try, matching
            // `LevelStats::from_passes` over the winner's pass stats.
            let winner = node
                .counters
                .iter()
                .filter(|c| c.name == "initial_winner")
                .filter_map(|c| arg_u64(&c.args, "try"))
                .next_back()
                .unwrap_or(0);
            let level = arg_u64(&node.args, "level").unwrap_or(0);
            let modules = arg_u64(&node.args, "modules").unwrap_or(0);
            let mut passes = Vec::new();
            for child in &node.children {
                if child.name == "try" && arg_u64(&child.args, "try") == Some(winner) {
                    collect_pass_counters(child, &mut passes);
                }
            }
            rows.push(row_from_passes(start, level, modules, 0, &passes));
        }
        "level" => {
            let level = arg_u64(&node.args, "level").unwrap_or(0);
            let modules = arg_u64(&node.args, "modules").unwrap_or(0);
            let rebalance = node
                .counters
                .iter()
                .filter(|c| c.name == "rebalance")
                .filter_map(|c| arg_u64(&c.args, "moves"))
                .sum();
            let mut passes = Vec::new();
            collect_pass_counters(node, &mut passes);
            rows.push(row_from_passes(start, level, modules, rebalance, &passes));
            return; // nothing level-shaped nests inside a level span
        }
        _ => {}
    }
    for child in &node.children {
        walk_levels(child, start, rows);
    }
}

/// Extracts per-level rows from a captured trace, in execution order.
///
/// Rows are tagged with the enclosing `start` span's index so a renderer
/// can select one start (the CLI's `--stats` prints start 0).
pub fn level_rows(trace: &Trace) -> Vec<LevelRow> {
    let tree = build_tree(trace);
    let mut rows = Vec::new();
    for node in &tree.spans {
        walk_levels(node, 0, &mut rows);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{append_trace, capture, counter, span};

    fn synthetic_start(win: u64) {
        let _ml = span("ml_bipartition", &[("modules", V::U(64))]);
        {
            let _init = span(
                "initial",
                &[("tries", V::U(2)), ("level", V::U(3)), ("modules", V::U(8))],
            );
            for t in 0..2u64 {
                let _try = span("try", &[("try", V::U(t))]);
                counter(
                    "fm_pass",
                    &[
                        ("pass", V::U(0)),
                        ("cut_before", V::U(40 + t)),
                        ("cut_after", V::U(30 + t)),
                        ("attempted", V::U(10)),
                        ("kept", V::U(6 + t)),
                    ],
                );
            }
            counter(
                "initial_winner",
                &[("try", V::U(win)), ("cut", V::U(30 + win))],
            );
        }
        let _lvl = span("level", &[("level", V::U(2)), ("modules", V::U(16))]);
        counter("rebalance", &[("moves", V::U(3))]);
        let _ref = span("fm_refine", &[]);
        for p in 0..2u64 {
            counter(
                "fm_pass",
                &[
                    ("pass", V::U(p)),
                    ("cut_before", V::U(30 - p * 4)),
                    ("cut_after", V::U(26 - p * 4)),
                    ("attempted", V::U(16)),
                    ("kept", V::U(4)),
                ],
            );
        }
    }

    fn synthetic_run() -> Trace {
        crate::force_enabled(true);
        let (_, t) = capture(|| {
            let _run = span("run", &[("runs", V::U(2))]);
            for i in 0..2u64 {
                let (_, child) = capture(|| synthetic_start(i % 2));
                append_trace("start", &[("start", V::U(i))], &child.unwrap());
            }
        });
        crate::force_enabled(false);
        t.expect("recorded")
    }

    #[test]
    fn tree_nesting_matches_bracketing() {
        let _gate = crate::test_gate_lock();
        let tree = build_tree(&synthetic_run());
        assert_eq!(tree.spans.len(), 1);
        let run = &tree.spans[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.children.len(), 2);
        for (i, start) in run.children.iter().enumerate() {
            assert_eq!(start.name, "start");
            assert_eq!(arg_u64(&start.args, "start"), Some(i as u64));
            let ml = &start.children[0];
            assert_eq!(ml.name, "ml_bipartition");
            assert_eq!(ml.children.len(), 2); // initial + level
        }
    }

    #[test]
    fn unbalanced_trace_closes_open_spans() {
        let _gate = crate::test_gate_lock();
        let mut t = synthetic_run();
        t.events.truncate(5); // drop most Ends
        let tree = build_tree(&t);
        assert_eq!(tree.spans.len(), 1); // still a single rooted tree
    }

    #[test]
    fn level_rows_match_from_passes_semantics() {
        let _gate = crate::test_gate_lock();
        let rows = level_rows(&synthetic_run());
        assert_eq!(rows.len(), 4); // 2 starts × (initial + level)
                                   // Start 0: winner is try 0.
        assert_eq!(
            rows[0],
            LevelRow {
                start: 0,
                level: 3,
                modules: 8,
                cut_before: 40,
                cut_after: 30,
                attempted: 10,
                kept: 6,
                rebalance_moves: 0,
                passes: 1,
            }
        );
        // Start 1: winner is try 1 → cut_before/after shift by one.
        assert_eq!(rows[2].start, 1);
        assert_eq!(rows[2].cut_before, 41);
        assert_eq!(rows[2].cut_after, 31);
        assert_eq!(rows[2].kept, 7);
        // Uncoarsening level: two passes aggregated, first before / last after.
        assert_eq!(
            rows[1],
            LevelRow {
                start: 0,
                level: 2,
                modules: 16,
                cut_before: 30,
                cut_after: 22,
                attempted: 32,
                kept: 8,
                rebalance_moves: 3,
                passes: 2,
            }
        );
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let _gate = crate::test_gate_lock();
        let report = RunReport {
            meta: vec![
                ("algo", V::S("ml-fm")),
                ("seed", V::U(1)),
                ("runs", V::U(2)),
            ],
            cuts: vec![31, 30],
            failures: Vec::new(),
            truncations: Vec::new(),
            retries: Vec::new(),
            repairs: Vec::new(),
            wall_secs: 0.5,
            cpu_secs: 0.9,
            trace: synthetic_run(),
        };
        let doc = report.to_json();
        let parsed = json::parse(&doc).expect("report is valid JSON");
        assert_eq!(
            parsed.get("schema").unwrap().as_str(),
            Some("mlpart-run-report-v3")
        );
        let profile = parsed.get("profile").expect("v3 profile section");
        let phases = profile.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases[0].get("phase").unwrap().as_str(), Some("run"));
        assert!(
            !parsed.get("metrics").unwrap().as_arr().unwrap().is_empty(),
            "metrics registry folded the counters"
        );
        assert_eq!(
            parsed.get("failures").unwrap().as_arr().unwrap().len(),
            0,
            "healthy run reports no failures"
        );
        assert_eq!(
            parsed.get("cut").unwrap().get("min").unwrap().as_num(),
            Some(30.0)
        );
        assert_eq!(
            parsed
                .get("cut")
                .unwrap()
                .get("per_start")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
        let spans = parsed.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("run"));
        // Timing-stripped reports of the same content compare equal.
        let mut shifted = report.clone();
        for ev in &mut shifted.trace.events {
            ev.ts_ns += 1_000_000;
        }
        shifted.wall_secs = 9.9;
        assert_eq!(
            export::strip_timing(&doc),
            export::strip_timing(&shifted.to_json())
        );
    }

    #[test]
    fn parse_report_round_trips_current_output() {
        let _gate = crate::test_gate_lock();
        let report = RunReport {
            meta: vec![("algo", V::S("ml-fm")), ("seed", V::U(1))],
            cuts: vec![31, 30],
            failures: Vec::new(),
            truncations: Vec::new(),
            retries: Vec::new(),
            repairs: Vec::new(),
            wall_secs: 0.5,
            cpu_secs: 0.9,
            trace: synthetic_run(),
        };
        let loaded = parse_report(&report.to_json()).expect("v3 parses");
        assert_eq!(loaded.version, 3);
        assert_eq!(loaded.alloc_tracked, cfg!(feature = "obs-alloc"));
        assert_eq!(loaded.phases[0].name, "run");
        // The serialized profile table matches the recomputed rollup.
        let recomputed = crate::profile::phases_from_report(&loaded.doc).expect("spans");
        let serialized = loaded
            .doc
            .get("profile")
            .unwrap()
            .get("phases")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(serialized.len(), recomputed.len());
        for (json_phase, agg) in serialized.iter().zip(&recomputed) {
            assert_eq!(
                json_phase.get("phase").unwrap().as_str(),
                Some(agg.name.as_str())
            );
            assert_eq!(
                json_phase.get("count").unwrap().as_num(),
                Some(agg.count as f64)
            );
        }
        assert!(parse_report(r#"{"schema":"bogus","spans":[]}"#).is_err());
        assert!(parse_report("not json").is_err());
    }

    #[test]
    fn failures_and_truncations_serialize() {
        let _gate = crate::test_gate_lock();
        let report = RunReport {
            meta: vec![("algo", V::S("ml-fm"))],
            cuts: vec![30],
            failures: vec![FailureRecord {
                start: 1,
                phase: Some("fm_refine".to_string()),
                message: "injected fault: panic@start:1".to_string(),
            }],
            truncations: vec![TruncationRecord {
                start: 0,
                limit: "passes",
                site: "pass",
                level: Some(2),
                pass: Some(4),
            }],
            retries: vec![RetryReportRecord {
                start: 1,
                attempt: 0,
                phase: None,
                message: "injected fault: panic@attempt:8".to_string(),
            }],
            repairs: vec![RepairReportRecord {
                start: 0,
                moves: 5,
                cut_before: 30,
                cut_after: 33,
                feasible: true,
            }],
            wall_secs: 0.1,
            cpu_secs: 0.1,
            trace: synthetic_run(),
        };
        let parsed = json::parse(&report.to_json()).expect("valid JSON");
        let failures = parsed.get("failures").unwrap().as_arr().unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].get("start").unwrap().as_num(), Some(1.0));
        assert_eq!(
            failures[0].get("phase").unwrap().as_str(),
            Some("fm_refine")
        );
        assert!(failures[0]
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("injected"));
        let truncations = parsed.get("truncations").unwrap().as_arr().unwrap();
        assert_eq!(truncations.len(), 1);
        assert_eq!(
            truncations[0].get("limit").unwrap().as_str(),
            Some("passes")
        );
        assert_eq!(truncations[0].get("level").unwrap().as_num(), Some(2.0));
        let retries = parsed.get("retries").unwrap().as_arr().unwrap();
        assert_eq!(retries.len(), 1);
        assert_eq!(retries[0].get("start").unwrap().as_num(), Some(1.0));
        assert_eq!(retries[0].get("attempt").unwrap().as_num(), Some(0.0));
        assert_eq!(retries[0].get("phase").unwrap(), &json::Json::Null);
        assert!(retries[0]
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("attempt:8"));
        let repairs = parsed.get("repairs").unwrap().as_arr().unwrap();
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].get("moves").unwrap().as_num(), Some(5.0));
        assert_eq!(repairs[0].get("cut_after").unwrap().as_num(), Some(33.0));
        assert_eq!(repairs[0].get("feasible").unwrap(), &json::Json::Bool(true));
    }
}
