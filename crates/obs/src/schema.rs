//! Minimal JSON Schema validator.
//!
//! CI validates emitted Chrome traces and run reports against checked-in
//! schemas (`schemas/*.schema.json`). With no external dependencies, this
//! module implements the subset of JSON Schema those schemas use: `type`
//! (string or array of strings), `required`, `properties`, `items`, `enum`,
//! and `minItems`. Unknown keywords are ignored, as the spec requires.

use crate::json::Json;

/// Validates `doc` against `schema`, returning every violation as a
/// `path: message` string. Empty result means the document conforms.
pub fn validate(schema: &Json, doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    check(schema, doc, "$", &mut errors);
    errors
}

fn type_matches(name: &str, doc: &Json) -> bool {
    match name {
        "null" => matches!(doc, Json::Null),
        "boolean" => matches!(doc, Json::Bool(_)),
        "number" => matches!(doc, Json::Num(_)),
        "integer" => matches!(doc, Json::Num(n) if n.fract() == 0.0),
        "string" => matches!(doc, Json::Str(_)),
        "array" => matches!(doc, Json::Arr(_)),
        "object" => matches!(doc, Json::Obj(_)),
        _ => false,
    }
}

fn check(schema: &Json, doc: &Json, path: &str, errors: &mut Vec<String>) {
    if let Some(ty) = schema.get("type") {
        let names: Vec<&str> = match ty {
            Json::Str(s) => vec![s.as_str()],
            Json::Arr(items) => items.iter().filter_map(Json::as_str).collect(),
            _ => Vec::new(),
        };
        if !names.is_empty() && !names.iter().any(|n| type_matches(n, doc)) {
            errors.push(format!(
                "{path}: expected type {}, got {}",
                names.join("|"),
                doc.type_name()
            ));
            return; // structural keywords below assume the right type
        }
    }
    if let Some(Json::Arr(options)) = schema.get("enum") {
        if !options.contains(doc) {
            errors.push(format!("{path}: value not in enum"));
        }
    }
    if let Some(Json::Arr(required)) = schema.get("required") {
        for key in required.iter().filter_map(Json::as_str) {
            if doc.get(key).is_none() {
                errors.push(format!("{path}: missing required key \"{key}\""));
            }
        }
    }
    if let (Some(Json::Obj(props)), Json::Obj(_)) = (schema.get("properties"), doc) {
        for (key, sub) in props {
            if let Some(value) = doc.get(key) {
                check(sub, value, &format!("{path}.{key}"), errors);
            }
        }
    }
    if let (Some(items_schema), Json::Arr(items)) = (schema.get("items"), doc) {
        for (i, item) in items.iter().enumerate() {
            check(items_schema, item, &format!("{path}[{i}]"), errors);
        }
    }
    if let (Some(Json::Num(min)), Json::Arr(items)) = (schema.get("minItems"), doc) {
        if (items.len() as f64) < *min {
            errors.push(format!("{path}: fewer than {min} items"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    const SCHEMA: &str = r#"{
        "type": "object",
        "required": ["schema", "events"],
        "properties": {
            "schema": {"type": "string", "enum": ["v1"]},
            "events": {
                "type": "array",
                "minItems": 1,
                "items": {
                    "type": "object",
                    "required": ["name", "ts"],
                    "properties": {
                        "name": {"type": "string"},
                        "ts": {"type": "integer"}
                    }
                }
            }
        }
    }"#;

    #[test]
    fn conforming_document_passes() {
        let schema = parse(SCHEMA).unwrap();
        let doc = parse(r#"{"schema":"v1","events":[{"name":"run","ts":12}]}"#).unwrap();
        assert_eq!(validate(&schema, &doc), Vec::<String>::new());
    }

    #[test]
    fn violations_are_reported_with_paths() {
        let schema = parse(SCHEMA).unwrap();
        let doc = parse(r#"{"schema":"v2","events":[{"name":7,"ts":1.5}]}"#).unwrap();
        let errors = validate(&schema, &doc);
        assert!(errors
            .iter()
            .any(|e| e.contains("$.schema") && e.contains("enum")));
        assert!(errors.iter().any(|e| e.contains("$.events[0].name")));
        assert!(errors.iter().any(|e| e.contains("$.events[0].ts")));
    }

    #[test]
    fn missing_required_and_empty_array() {
        let schema = parse(SCHEMA).unwrap();
        let doc = parse(r#"{"schema":"v1","events":[]}"#).unwrap();
        let errors = validate(&schema, &doc);
        assert_eq!(errors, vec!["$.events: fewer than 1 items".to_string()]);
        let doc = parse(r#"{"schema":"v1"}"#).unwrap();
        let errors = validate(&schema, &doc);
        assert!(errors[0].contains("missing required key \"events\""));
    }

    #[test]
    fn wrong_root_type_short_circuits() {
        let schema = parse(SCHEMA).unwrap();
        let doc = parse("[1,2]").unwrap();
        let errors = validate(&schema, &doc);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("expected type object"));
    }
}
