//! Event recording: spans, counters, and thread-local capture.
//!
//! A [`Trace`] is a flat event stream; span nesting is encoded by
//! `Begin`/`End` bracketing (the report layer rebuilds the tree). Events
//! carry a deterministic payload (`name`, `args`) plus one non-normative
//! timestamp (`ts_ns`, relative to the enclosing capture's start).

use crate::clock;
use std::cell::RefCell;

/// A deterministic argument value attached to an event.
///
/// Variants cover everything the pipeline records: unsigned counters,
/// signed gains, configured ratios, and static labels. `f64` values are
/// only ever *configuration* echoes (e.g. the matching ratio) — never
/// measurements — so their formatting is deterministic too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum V {
    /// Unsigned counter (module counts, cuts, move counts).
    U(u64),
    /// Signed value (gains).
    I(i64),
    /// Configured floating-point value (never a measurement).
    F(f64),
    /// Static label (engine names, algorithm names).
    S(&'static str),
}

impl From<u64> for V {
    fn from(v: u64) -> Self {
        V::U(v)
    }
}
impl From<usize> for V {
    fn from(v: usize) -> Self {
        V::U(v as u64)
    }
}
impl From<u32> for V {
    fn from(v: u32) -> Self {
        V::U(u64::from(v))
    }
}
impl From<i64> for V {
    fn from(v: i64) -> Self {
        V::I(v)
    }
}
impl From<i32> for V {
    fn from(v: i32) -> Self {
        V::I(i64::from(v))
    }
}
impl From<f64> for V {
    fn from(v: f64) -> Self {
        V::F(v)
    }
}
impl From<&'static str> for V {
    fn from(v: &'static str) -> Self {
        V::S(v)
    }
}

/// Event kind: span bracket or point sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvKind {
    /// Span start; matched by the next same-depth `End`.
    Begin,
    /// Span end.
    End,
    /// Point sample carrying deterministic counter values.
    Counter,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Span bracket or counter sample.
    pub kind: EvKind,
    /// Event name (static, deterministic).
    pub name: &'static str,
    /// Nanoseconds since the enclosing capture began. **Non-normative**:
    /// the only field excluded from the determinism contract.
    pub ts_ns: u64,
    /// Deterministic argument values.
    pub args: Vec<(&'static str, V)>,
}

/// A captured event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events in recording order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Appends `child` into this trace wrapped in one `name` span, rebasing
    /// the child's timestamps after this trace's last event — the offline
    /// (recorder-free) twin of [`append_trace`]. The supervision layer uses
    /// it to assemble a start's full contribution (every attempt, wrapped)
    /// before splicing it into the batch stream in start order.
    pub fn append_span(&mut self, name: &'static str, args: &[(&'static str, V)], child: &Trace) {
        let base = self.events.last().map_or(0, |e| e.ts_ns);
        let child_end = child.events.last().map_or(0, |e| e.ts_ns);
        self.events.push(Event {
            kind: EvKind::Begin,
            name,
            ts_ns: base,
            args: args.to_vec(),
        });
        for ev in &child.events {
            self.events.push(Event {
                ts_ns: base + ev.ts_ns,
                ..ev.clone()
            });
        }
        self.events.push(Event {
            kind: EvKind::End,
            name,
            ts_ns: base + child_end,
            args: Vec::new(),
        });
    }
}

struct Recorder {
    events: Vec<Event>,
    t0_ns: u64,
}

thread_local! {
    static REC: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// True when the gate is on *and* a recorder is installed on this thread —
/// i.e. a hook firing now would actually record. Hooks that do non-trivial
/// work to assemble their arguments (gain histograms, occupancy scans)
/// should check this first.
pub fn recording() -> bool {
    crate::enabled() && REC.with(|r| r.borrow().is_some())
}

fn with_recorder(f: impl FnOnce(&mut Recorder)) {
    if !crate::enabled() {
        return;
    }
    REC.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Restores the previous recorder even if the captured closure panics, so
/// `#[should_panic]` tests cannot leave a stale recorder installed.
struct CaptureScope {
    prev: Option<Recorder>,
}

impl CaptureScope {
    fn install() -> Self {
        let fresh = Recorder {
            events: Vec::new(),
            t0_ns: clock::now_ns(),
        };
        let prev = REC.with(|r| r.borrow_mut().replace(fresh));
        CaptureScope { prev }
    }

    fn finish(mut self) -> Option<Trace> {
        let cur = REC.with(|r| {
            let mut slot = r.borrow_mut();
            let cur = slot.take();
            *slot = self.prev.take();
            cur
        });
        std::mem::forget(self);
        cur.map(|r| Trace { events: r.events })
    }
}

impl Drop for CaptureScope {
    fn drop(&mut self) {
        // Unwinding path: drop whatever the closure recorded, restore the
        // outer recorder.
        REC.with(|r| {
            *r.borrow_mut() = self.prev.take();
        });
    }
}

/// Runs `f` with a fresh recorder installed on this thread and returns its
/// value plus the captured trace.
///
/// Returns `None` for the trace when the runtime gate is off — `f` then
/// runs with zero recording overhead. Captures nest: an inner `capture`
/// stashes the outer recorder and restores it afterwards, which is how the
/// execution layer captures one stream per start and then merges them into
/// the caller's stream via [`append_trace`].
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Option<Trace>) {
    if !crate::enabled() {
        return (f(), None);
    }
    let scope = CaptureScope::install();
    let value = f();
    let trace = scope.finish();
    (value, trace)
}

/// RAII span: records `Begin` on creation and `End` on drop.
///
/// Inert (records nothing) when created while not [`recording`].
///
/// Under the `obs-alloc` feature an armed guard also snapshots the
/// thread's allocation tallies at `Begin` and attaches the deltas to the
/// `End` event as `alloc_bytes`/`alloc_count`/`alloc_peak` args — the
/// innermost-open-span attribution [`crate::alloc`] documents. The alloc
/// args are non-normative (removed by `strip_profile`), so span content
/// stays identical between `obs` and `obs-alloc` builds.
#[derive(Debug)]
#[must_use = "a span ends when the guard drops"]
pub struct SpanGuard {
    name: Option<&'static str>,
    #[cfg(feature = "obs-alloc")]
    alloc: Option<crate::alloc::SpanAlloc>,
}

/// Opens a span; the returned guard closes it when dropped.
pub fn span(name: &'static str, args: &[(&'static str, V)]) -> SpanGuard {
    let mut armed = false;
    with_recorder(|rec| {
        let ts_ns = clock::now_ns() - rec.t0_ns;
        rec.events.push(Event {
            kind: EvKind::Begin,
            name,
            ts_ns,
            args: args.to_vec(),
        });
        armed = true;
    });
    SpanGuard {
        name: armed.then_some(name),
        #[cfg(feature = "obs-alloc")]
        alloc: armed.then(crate::alloc::span_begin),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            let mut args: Vec<(&'static str, V)> = Vec::new();
            #[cfg(feature = "obs-alloc")]
            if let Some(window) = self.alloc.take() {
                let (bytes, count, peak) = crate::alloc::span_end(window);
                args.push(("alloc_bytes", V::U(bytes)));
                args.push(("alloc_count", V::U(count)));
                args.push(("alloc_peak", V::U(peak)));
            }
            with_recorder(|rec| {
                let ts_ns = clock::now_ns() - rec.t0_ns;
                rec.events.push(Event {
                    kind: EvKind::End,
                    name,
                    ts_ns,
                    args: std::mem::take(&mut args),
                });
            });
        }
    }
}

/// Records a counter sample.
pub fn counter(name: &'static str, args: &[(&'static str, V)]) {
    with_recorder(|rec| {
        let ts_ns = clock::now_ns() - rec.t0_ns;
        rec.events.push(Event {
            kind: EvKind::Counter,
            name,
            ts_ns,
            args: args.to_vec(),
        });
    });
}

/// Appends a previously captured trace into the current recorder as one
/// span named `name`, rebasing the child's timestamps onto this recorder's
/// timeline.
///
/// This is the deterministic merge primitive: the execution layer captures
/// one trace per start (on whichever worker thread ran it) and appends them
/// **in start order**, so the merged stream's content is independent of the
/// thread count and of which worker ran which start. No-op when not
/// [`recording`].
pub fn append_trace(name: &'static str, args: &[(&'static str, V)], child: &Trace) {
    with_recorder(|rec| {
        let base = clock::now_ns() - rec.t0_ns;
        let child_end = child.events.last().map_or(0, |e| e.ts_ns);
        rec.events.push(Event {
            kind: EvKind::Begin,
            name,
            ts_ns: base,
            args: args.to_vec(),
        });
        for ev in &child.events {
            rec.events.push(Event {
                ts_ns: base + ev.ts_ns,
                ..ev.clone()
            });
        }
        rec.events.push(Event {
            kind: EvKind::End,
            name,
            ts_ns: base + child_end,
            args: Vec::new(),
        });
    });
}

/// Appends a previously captured trace **verbatim** into the current
/// recorder — no wrapper span — rebasing timestamps onto this recorder's
/// timeline. The supervision layer uses it to splice a start's pre-wrapped
/// contribution (or a checkpoint-restored one) into the batch stream; the
/// content that lands is byte-identical to what [`append_trace`] would have
/// produced live. No-op when not [`recording`].
pub fn append_raw(child: &Trace) {
    with_recorder(|rec| {
        let base = clock::now_ns() - rec.t0_ns;
        for ev in &child.events {
            rec.events.push(Event {
                ts_ns: base + ev.ts_ns,
                ..ev.clone()
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(t: &Trace) -> Vec<(&'static str, EvKind)> {
        t.events.iter().map(|e| (e.name, e.kind)).collect()
    }

    #[test]
    fn disabled_capture_records_nothing() {
        let _gate = crate::test_gate_lock();
        crate::force_off_for_test();
        let (v, t) = capture(|| {
            let _s = span("a", &[]);
            counter("c", &[]);
            7
        });
        assert_eq!(v, 7);
        assert!(t.is_none());
        crate::force_enabled(false);
    }

    #[test]
    fn hooks_without_recorder_are_noops() {
        let _gate = crate::test_gate_lock();
        crate::force_enabled(true);
        let _s = span("orphan", &[]);
        counter("orphan", &[]);
        crate::force_enabled(false);
    }

    #[test]
    fn spans_and_counters_nest() {
        let _gate = crate::test_gate_lock();
        crate::force_enabled(true);
        let (_, t) = capture(|| {
            let _outer = span("outer", &[("n", V::U(2))]);
            for i in 0..2u64 {
                let _inner = span("inner", &[("i", V::U(i))]);
                counter("tick", &[("i", V::U(i))]);
            }
        });
        crate::force_enabled(false);
        let t = t.expect("recording on");
        assert_eq!(
            names(&t),
            vec![
                ("outer", EvKind::Begin),
                ("inner", EvKind::Begin),
                ("tick", EvKind::Counter),
                ("inner", EvKind::End),
                ("inner", EvKind::Begin),
                ("tick", EvKind::Counter),
                ("inner", EvKind::End),
                ("outer", EvKind::End),
            ]
        );
        // Timestamps are monotone within one capture.
        assert!(t.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn nested_capture_restores_outer_recorder() {
        let _gate = crate::test_gate_lock();
        crate::force_enabled(true);
        let (_, outer) = capture(|| {
            counter("before", &[]);
            let (_, inner) = capture(|| counter("inner", &[]));
            let inner = inner.expect("inner capture records");
            assert_eq!(names(&inner), vec![("inner", EvKind::Counter)]);
            append_trace("start", &[("start", V::U(0))], &inner);
            counter("after", &[]);
        });
        crate::force_enabled(false);
        let outer = outer.expect("outer capture records");
        assert_eq!(
            names(&outer),
            vec![
                ("before", EvKind::Counter),
                ("start", EvKind::Begin),
                ("inner", EvKind::Counter),
                ("start", EvKind::End),
                ("after", EvKind::Counter),
            ]
        );
    }

    #[test]
    fn capture_restores_recorder_on_panic() {
        let _gate = crate::test_gate_lock();
        crate::force_enabled(true);
        let (_, outer) = capture(|| {
            counter("kept", &[]);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let (_, _t) = capture(|| {
                    counter("lost", &[]);
                    panic!("boom");
                });
            }));
            assert!(r.is_err());
            counter("still-kept", &[]);
        });
        crate::force_enabled(false);
        let outer = outer.expect("outer capture records");
        assert_eq!(
            names(&outer),
            vec![("kept", EvKind::Counter), ("still-kept", EvKind::Counter)]
        );
    }

    /// Assembling a contribution offline (`Trace::append_span`) and splicing
    /// it verbatim (`append_raw`) yields the same *content* as the live
    /// `append_trace` merge — the equivalence the supervised runner and
    /// checkpoint replay rely on.
    #[test]
    fn offline_wrap_plus_raw_splice_matches_live_append() {
        let _gate = crate::test_gate_lock();
        crate::force_enabled(true);
        let (_, child) = capture(|| {
            let _s = span("job", &[("x", V::U(3))]);
            counter("tick", &[]);
        });
        let child = child.expect("recorded");
        let (_, live) = capture(|| append_trace("start", &[("start", V::U(4))], &child));
        let mut contribution = Trace::default();
        contribution.append_span("start", &[("start", V::U(4))], &child);
        let (_, replay) = capture(|| append_raw(&contribution));
        crate::force_enabled(false);
        let live = live.expect("recorded");
        let replay = replay.expect("recorded");
        let content = |t: &Trace| -> Vec<_> {
            t.events
                .iter()
                .map(|e| (e.kind, e.name, e.args.clone()))
                .collect()
        };
        assert_eq!(content(&live), content(&replay));
    }

    #[test]
    fn append_rebases_timestamps() {
        let _gate = crate::test_gate_lock();
        crate::force_enabled(true);
        let (_, child) = capture(|| counter("c", &[]));
        let child = child.expect("recorded");
        let (_, parent) = capture(|| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            append_trace("start", &[], &child);
        });
        crate::force_enabled(false);
        let parent = parent.expect("recorded");
        // The appended child's counter is rebased at/after the parent Begin.
        assert!(parent.events[1].ts_ns >= parent.events[0].ts_ns);
        assert!(parent.events[0].ts_ns >= 1_000_000);
    }
}
