//! End-to-end checks for the `obs-alloc` tracking allocator: spans carry
//! allocation telemetry, reports expose it per phase, and the
//! normalization functions erase it so alloc-on and alloc-off builds of
//! the same workload compare equal.
#![cfg(feature = "obs-alloc")]

use mlpart_obs as obs;
use obs::report::RunReport;
use obs::trace::{EvKind, V};

fn traced_workload() -> obs::Trace {
    obs::force_enabled(true);
    let (_, trace) = obs::capture(|| {
        let _run = obs::span("run", &[("runs", 1u64.into())]);
        {
            let _grow = obs::span("level", &[("level", 0u64.into())]);
            // A deliberately chunky allocation attributed to this span.
            let v: Vec<u64> = (0..32_768).collect();
            obs::counter("fm_pass", &[("kept", V::U(v.len() as u64))]);
        }
        let _tail = obs::span("level", &[("level", 1u64.into())]);
    });
    obs::force_enabled(false);
    trace.expect("gate forced on")
}

#[test]
fn span_end_events_carry_alloc_args() {
    let trace = traced_workload();
    let grow_end = trace
        .events
        .iter()
        .find(|e| e.kind == EvKind::End && e.name == "level")
        .expect("level span closed");
    let arg = |key: &str| -> u64 {
        grow_end
            .args
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| match v {
                V::U(n) => Some(*n),
                _ => None,
            })
            .unwrap_or_else(|| panic!("End event missing {key}"))
    };
    // The 32768-element Vec<u64> costs at least 256 KiB inside the span.
    assert!(arg("alloc_bytes") >= 256 * 1024, "bytes attributed to span");
    assert!(arg("alloc_count") >= 1, "at least the Vec allocation");
    assert!(
        arg("alloc_peak") >= 256 * 1024,
        "peak covers the live buffer"
    );
}

#[test]
fn report_profile_rolls_alloc_up_per_phase() {
    let report = RunReport {
        meta: vec![("algo", obs::V::S("ml-fm")), ("seed", 1u64.into())],
        cuts: vec![30],
        failures: Vec::new(),
        truncations: Vec::new(),
        retries: Vec::new(),
        repairs: Vec::new(),
        wall_secs: 0.01,
        cpu_secs: 0.01,
        trace: traced_workload(),
    };
    let doc = report.to_json();
    let parsed = obs::json::parse(&doc).expect("report parses");
    let profile = parsed.get("profile").expect("profile section");
    assert_eq!(
        profile.get("alloc_tracked").unwrap().as_num(),
        Some(1.0),
        "obs-alloc build flags itself"
    );
    let phases = profile.get("phases").unwrap().as_arr().unwrap();
    let level = phases
        .iter()
        .find(|p| p.get("phase").unwrap().as_str() == Some("level"))
        .expect("level phase");
    assert!(
        level.get("alloc_bytes").unwrap().as_num().unwrap() >= 256.0 * 1024.0,
        "phase rollup aggregates span allocation"
    );
}

/// `strip_profile` erases every allocator artifact, so a document from
/// this obs-alloc build is byte-identical to what a plain `obs` build
/// emits for the same content — the cross-build comparison `obs-diff`
/// relies on. Simulated here by hand-stripping the alloc args from the
/// trace (a plain build of this test can't run in the same binary).
#[test]
fn strip_profile_erases_allocator_artifacts() {
    let traced = traced_workload();
    let mut plain = traced.clone();
    for ev in &mut plain.events {
        ev.args
            .retain(|(k, _)| !matches!(*k, "alloc_bytes" | "alloc_count" | "alloc_peak"));
    }
    let jsonl_on = obs::to_jsonl(&traced);
    let jsonl_off = obs::to_jsonl(&plain);
    assert_ne!(jsonl_on, jsonl_off, "telemetry differs pre-normalization");
    assert_eq!(
        obs::strip_profile(&jsonl_on),
        obs::strip_profile(&jsonl_off),
        "normalized documents are byte-identical"
    );
    assert!(!obs::strip_profile(&jsonl_on).contains("alloc_"));
}
