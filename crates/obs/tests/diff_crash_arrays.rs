//! `obs-diff` over run reports whose crash-safety arrays are non-empty:
//! `failures`, `truncations`, `retries`, and `repairs` are all normative
//! content, so two reports that differ only there must refuse to diff
//! (exit 2), while identical crash records with slower timing stay a
//! telemetry question (exit 0/1).
//!
//! The committed fixtures under `tests/fixtures/` are byte-asserted against
//! the in-test generator, so they cannot silently drift from the report
//! writer; regenerate with `MLPART_REGEN_FIXTURES=1 cargo test -p
//! mlpart-obs --test diff_crash_arrays`.

use mlpart_obs as obs;
use obs::report::{
    FailureRecord, RepairReportRecord, RetryReportRecord, RunReport, TruncationRecord,
};
use obs::{EvKind, Event, Trace, V};
use std::process::Command;

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// A run trace with fixed timestamps (scaled by `scale`) so the generated
/// document is fully deterministic: two starts, one of which retried.
fn crashy_trace(scale: u64) -> Trace {
    let ev = |kind, name, ts_ns: u64, args: Vec<(&'static str, V)>| Event {
        kind,
        name,
        ts_ns: ts_ns * scale,
        args,
    };
    Trace {
        events: vec![
            ev(EvKind::Begin, "run", 0, vec![("runs", V::U(2))]),
            ev(EvKind::Begin, "start", 1_000_000, vec![("start", V::U(0))]),
            ev(
                EvKind::Counter,
                "fm_pass",
                2_000_000,
                vec![("kept", V::U(5))],
            ),
            ev(EvKind::End, "start", 12_000_000, vec![]),
            // Start 1's failed attempt 0 and its successful retry.
            ev(EvKind::Begin, "start", 12_000_000, vec![("start", V::U(1))]),
            ev(EvKind::End, "start", 14_000_000, vec![]),
            ev(
                EvKind::Begin,
                "start",
                14_000_000,
                vec![("start", V::U(1)), ("attempt", V::U(1))],
            ),
            ev(
                EvKind::Counter,
                "fm_pass",
                15_000_000,
                vec![("kept", V::U(3))],
            ),
            ev(EvKind::End, "start", 26_000_000, vec![]),
            ev(EvKind::End, "run", 27_000_000, vec![]),
        ],
    }
}

/// A report whose crash arrays are all non-empty. `scale` stretches the
/// (non-normative) timestamps; `retry_message` perturbs normative content.
fn crashy_report(scale: u64, retry_message: &str) -> String {
    RunReport {
        meta: vec![("algo", V::S("ml-fm")), ("seed", V::U(7))],
        cuts: vec![30, 33],
        failures: vec![FailureRecord {
            start: 2,
            phase: Some("fm_refine".to_string()),
            message: "injected fault: panic@start:2".to_string(),
        }],
        truncations: vec![TruncationRecord {
            start: 0,
            limit: "passes",
            site: "pass",
            level: Some(1),
            pass: Some(3),
        }],
        retries: vec![RetryReportRecord {
            start: 1,
            attempt: 0,
            phase: Some("fm_refine".to_string()),
            message: retry_message.to_string(),
        }],
        repairs: vec![RepairReportRecord {
            start: 1,
            moves: 4,
            cut_before: 30,
            cut_after: 33,
            feasible: true,
        }],
        wall_secs: 0.027 * scale as f64,
        cpu_secs: 0.026 * scale as f64,
        trace: crashy_trace(scale),
    }
    .to_json()
}

const BASE: &str = "report-crashy-base.json";
const SLOW: &str = "report-crashy-slow.json";
const MISMATCH: &str = "report-crashy-mismatch.json";

fn generated() -> [(&'static str, String); 3] {
    [
        (BASE, crashy_report(1, "injected fault: panic@attempt:8")),
        (SLOW, crashy_report(10, "injected fault: panic@attempt:8")),
        (
            MISMATCH,
            crashy_report(1, "injected fault: panic@attempt:9"),
        ),
    ]
}

/// The committed fixtures are exactly what the current report writer emits.
#[test]
fn committed_fixtures_match_the_report_writer() {
    for (name, doc) in generated() {
        let path = fixture(name);
        if std::env::var("MLPART_REGEN_FIXTURES").is_ok() {
            std::fs::write(&path, &doc).expect("regen fixture");
        }
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (regen with MLPART_REGEN_FIXTURES=1)"));
        assert_eq!(committed, doc, "{name} is stale");
    }
}

fn diff(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_obs-diff"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// Identical crash records, identical timing: clean self-compare.
#[test]
fn crashy_self_compare_exits_zero() {
    let out = diff(&[&fixture(BASE), &fixture(BASE)]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {text}");
    assert!(text.contains("verdict: clean"), "stdout: {text}");
}

/// Identical crash records but 10x slower phases: a regression (exit 1),
/// not a content mismatch — the arrays carry no timing.
#[test]
fn crashy_slowdown_exits_one() {
    let out = diff(&[&fixture(BASE), &fixture(SLOW)]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {text}");
    assert!(text.contains("TIME REGRESSION"), "stdout: {text}");
}

/// A differing retry message is normative content: the diff refuses with
/// exit 2 instead of reporting a telemetry delta.
#[test]
fn crash_array_content_mismatch_exits_two() {
    let out = diff(&[&fixture(BASE), &fixture(MISMATCH)]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(2), "stdout: {text}");
    assert!(text.contains("MISMATCH"), "stdout: {text}");
}

/// Library-level check that each crash array is independently normative:
/// perturbing any one of them breaks the byte compare.
#[test]
fn every_crash_array_is_normative() {
    let base = crashy_report(1, "m");
    for (needle, replacement) in [
        ("\"failures\":[{\"start\":2", "\"failures\":[{\"start\":3"),
        ("\"limit\":\"passes\"", "\"limit\":\"moves\""),
        ("\"attempt\":0", "\"attempt\":1"),
        ("\"feasible\":true", "\"feasible\":false"),
    ] {
        let perturbed = base.replace(needle, replacement);
        assert_ne!(base, perturbed, "needle {needle} not found");
        let d = obs::diff::diff_documents(
            "a",
            &base,
            "b",
            &perturbed,
            &obs::diff::DiffOptions::default(),
        );
        assert_eq!(d.exit, obs::diff::EXIT_ERROR, "{needle}: {}", d.text);
        assert!(d.text.contains("MISMATCH"), "{needle}: {}", d.text);
    }
}
