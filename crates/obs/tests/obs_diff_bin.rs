//! End-to-end exit-code contract of the `obs-diff` binary over committed
//! fixtures: a clean self-compare exits 0, the injected 10x regression
//! fixture exits 1, a structural change exits 2 — the full 0/1/2 ladder
//! through a real process, not just the library.

use std::process::Command;

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn diff(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_obs-diff"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn self_compare_exits_zero() {
    let out = diff(&[&fixture("diff-base.jsonl"), &fixture("diff-base.jsonl")]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("identical"), "stdout: {text}");
    assert!(text.contains("verdict: clean"), "stdout: {text}");
}

#[test]
fn injected_regression_fixture_exits_one() {
    let out = diff(&[
        &fixture("diff-base.jsonl"),
        &fixture("diff-regressed.jsonl"),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSION"), "stdout: {text}");
    assert!(text.contains("level"), "names the regressed phase: {text}");
}

#[test]
fn loosened_threshold_accepts_the_regression() {
    let out = diff(&[
        "--max-time-ratio",
        "100",
        &fixture("diff-base.jsonl"),
        &fixture("diff-regressed.jsonl"),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn structural_change_exits_two() {
    let out = diff(&[&fixture("diff-base.jsonl"), &fixture("diff-mismatch.jsonl")]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MISMATCH"), "stdout: {text}");
}

#[test]
fn missing_file_and_bad_usage_exit_two() {
    let out = diff(&[&fixture("diff-base.jsonl"), "/no/such/file.json"]);
    assert_eq!(out.status.code(), Some(2));
    let out = diff(&[&fixture("diff-base.jsonl")]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "stderr: {err}");
}

#[test]
fn help_exits_zero() {
    let out = diff(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--max-time-ratio"), "stdout: {text}");
}
