//! Round-trip guarantees for run reports: the emitted v3 document
//! re-serializes byte-identically after parsing, loads through
//! [`mlpart_obs::report::parse_report`], and committed v2 baselines keep
//! loading (so `obs-diff` can compare old artifacts against new runs).

use mlpart_obs as obs;
use obs::json;
use obs::report::{parse_report, RunReport};

const V2_FIXTURE: &str = include_str!("fixtures/report-v2.json");

fn sample_report() -> RunReport {
    obs::force_enabled(true);
    let (_, trace) = obs::capture(|| {
        let _run = obs::span("run", &[("runs", 2u64.into())]);
        for i in 0..2u64 {
            let _start = obs::span("start", &[("start", i.into())]);
            let _level = obs::span("level", &[("level", 0u64.into())]);
            obs::counter(
                "fm_pass",
                &[("pass", 0u64.into()), ("cut_after", (30 + i).into())],
            );
        }
    });
    obs::force_enabled(false);
    RunReport {
        meta: vec![("algo", obs::V::S("ml-fm")), ("seed", 1997u64.into())],
        cuts: vec![31, 30],
        failures: Vec::new(),
        truncations: Vec::new(),
        retries: Vec::new(),
        repairs: Vec::new(),
        wall_secs: 0.25,
        cpu_secs: 0.5,
        trace: trace.expect("gate forced on"),
    }
}

/// `--report-out` documents survive parse → re-serialize byte-for-byte:
/// the hand-rolled emitter and the generic [`json::write_value`] writer
/// agree on every formatting decision (key order, integer formatting,
/// escaping), so external tooling can edit-and-rewrite reports without
/// spurious diffs.
#[test]
fn v3_report_reserializes_byte_identically() {
    let doc = sample_report().to_json();
    let parsed = json::parse(&doc).expect("report parses");
    assert_eq!(json::to_string(&parsed), doc);
}

#[test]
fn v3_report_loads_with_profile_and_metrics() {
    let doc = sample_report().to_json();
    let loaded = parse_report(&doc).expect("v3 loads");
    assert_eq!(loaded.version, 3);
    assert_eq!(loaded.alloc_tracked, cfg!(feature = "obs-alloc"));
    let names: Vec<&str> = loaded.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["run", "start", "level"]);
    assert_eq!(loaded.phases[1].count, 2, "two starts aggregate");
    assert!(
        loaded.doc.get("metrics").unwrap().as_arr().is_some(),
        "metrics section present"
    );
}

/// The committed v2 baseline still loads; its phases are recomputed from
/// the spans tree since v2 predates the profile section.
#[test]
fn committed_v2_fixture_still_loads() {
    let loaded = parse_report(V2_FIXTURE).expect("v2 fixture loads");
    assert_eq!(loaded.version, 2);
    assert!(!loaded.alloc_tracked, "v2 never tracked allocations");
    let names: Vec<&str> = loaded.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["run", "start", "level"]);
    let run = &loaded.phases[0];
    assert_eq!(run.count, 1);
    assert_eq!(run.total_ns, 14_000_000);
    let start = &loaded.phases[1];
    assert_eq!(start.count, 2);
    assert_eq!(start.total_ns, 12_000_000);
    assert_eq!(
        run.self_ns,
        14_000_000 - 12_000_000,
        "self time excludes children"
    );
}

/// A v2 baseline diffs cleanly against a v3 run of the same content —
/// the cross-version path `obs-diff` exercises on old artifacts.
#[test]
fn v2_baseline_diffs_against_v3_candidate() {
    use obs::diff::{diff_documents, DiffOptions, EXIT_CLEAN};
    // Build a v3 report whose normative content matches the fixture.
    obs::force_enabled(true);
    let (_, trace) = obs::capture(|| {
        let _run = obs::span("run", &[("runs", 2u64.into())]);
        for i in 0..2u64 {
            let _start = obs::span("start", &[("start", i.into())]);
            let _level = obs::span(
                "level",
                &[("level", 0u64.into()), ("modules", 16u64.into())],
            );
            obs::counter(
                "fm_pass",
                &[
                    ("pass", 0u64.into()),
                    ("cut_before", (40 + i).into()),
                    ("cut_after", (31 - i).into()),
                    ("attempted", 16u64.into()),
                    ("kept", (6 + i).into()),
                ],
            );
        }
    });
    obs::force_enabled(false);
    let v3 = RunReport {
        meta: vec![
            ("algo", obs::V::S("ml-fm")),
            ("k", 2u64.into()),
            ("eps", obs::V::F(0.1)),
            ("seed", 1997u64.into()),
            ("runs", 2u64.into()),
            ("threads", 1u64.into()),
            ("circuit", obs::V::S("syn-balu")),
        ],
        cuts: vec![31, 30],
        failures: Vec::new(),
        truncations: Vec::new(),
        retries: Vec::new(),
        repairs: Vec::new(),
        wall_secs: 0.02,
        cpu_secs: 0.03,
        trace: trace.expect("gate forced on"),
    }
    .to_json();
    // Cross-version diffs can't byte-compare whole documents (v2 lacks the
    // profile/metrics sections), so compare phase rollups directly.
    let old = parse_report(V2_FIXTURE).expect("v2 loads");
    let new = parse_report(&v3).expect("v3 loads");
    let old_names: Vec<&str> = old.phases.iter().map(|p| p.name.as_str()).collect();
    let new_names: Vec<&str> = new.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(old_names, new_names, "same phase structure across versions");
    // And same-version diffs of identical content exit clean end to end.
    let d = diff_documents("base", &v3, "cand", &v3, &DiffOptions::default());
    assert_eq!(d.exit, EXIT_CLEAN, "{}", d.text);
}
