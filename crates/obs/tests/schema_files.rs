//! The checked-in schemas under `schemas/` must accept what the exporters
//! actually emit — these tests round-trip a captured trace through both
//! exporters and validate against the schema files CI ships.

use mlpart_obs as obs;
use obs::json;
use obs::report::RunReport;
use obs::schema;

const REPORT_SCHEMA: &str = include_str!("../../../schemas/run-report.schema.json");
const CHROME_SCHEMA: &str = include_str!("../../../schemas/chrome-trace.schema.json");

/// A small but structurally representative trace: a run with two starts,
/// each holding nested spans and counters.
fn sample_trace() -> obs::Trace {
    obs::force_enabled(true);
    let (_, trace) = obs::capture(|| {
        let _run = obs::span("run", &[("runs", 2u64.into())]);
        for i in 0..2u64 {
            let _start = obs::span("start", &[("start", i.into())]);
            let _level = obs::span("level", &[("level", 0u64.into())]);
            obs::counter(
                "fm_pass",
                &[("pass", 0u64.into()), ("cut_after", 7u64.into())],
            );
        }
    });
    obs::force_enabled(false);
    trace.expect("gate forced on")
}

#[test]
fn chrome_trace_matches_checked_in_schema() {
    let schema = json::parse(CHROME_SCHEMA).expect("schema parses");
    let doc = json::parse(&obs::to_chrome_trace(&sample_trace())).expect("export parses");
    let errors = schema::validate(&schema, &doc);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
}

#[test]
fn run_report_matches_checked_in_schema() {
    let report = RunReport {
        meta: vec![("algo", obs::V::S("ml-c")), ("seed", 5u64.into())],
        cuts: vec![7, 9],
        failures: vec![obs::report::FailureRecord {
            start: 1,
            phase: None,
            message: "injected fault: panic@start:1".to_string(),
        }],
        truncations: vec![obs::report::TruncationRecord {
            start: 0,
            limit: "passes",
            site: "pass",
            level: None,
            pass: Some(3),
        }],
        retries: vec![obs::report::RetryReportRecord {
            start: 1,
            attempt: 0,
            phase: Some("fm_refine".to_string()),
            message: "injected fault: panic@attempt:8".to_string(),
        }],
        repairs: vec![obs::report::RepairReportRecord {
            start: 0,
            moves: 4,
            cut_before: 7,
            cut_after: 9,
            feasible: true,
        }],
        wall_secs: 0.25,
        cpu_secs: 0.5,
        trace: sample_trace(),
    };
    let schema = json::parse(REPORT_SCHEMA).expect("schema parses");
    let doc = json::parse(&report.to_json()).expect("report parses");
    let errors = schema::validate(&schema, &doc);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
}

/// The schemas reject structurally broken documents — they are not
/// vacuous accept-everything stubs.
#[test]
fn schemas_reject_malformed_documents() {
    let chrome = json::parse(CHROME_SCHEMA).expect("schema parses");
    let bad = json::parse(r#"{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":0,"ts":1}]}"#)
        .expect("parses");
    assert!(
        !schema::validate(&chrome, &bad).is_empty(),
        "bad ph must fail"
    );
    let empty = json::parse(r#"{"traceEvents":[]}"#).expect("parses");
    assert!(!schema::validate(&chrome, &empty).is_empty(), "minItems");

    let report = json::parse(REPORT_SCHEMA).expect("schema parses");
    let bad = json::parse(r#"{"schema":"mlpart-run-report-v2","meta":{},"cut":{"min":0,"max":0,"avg":0,"per_start":[]},"timing":{"wall_secs":0,"cpu_secs":0},"spans":[],"counters":[]}"#).expect("parses");
    assert!(
        !schema::validate(&report, &bad).is_empty(),
        "v2 tag, missing profile/metrics, and empty spans must all fail v3"
    );
}

/// The preserved v2 schema still accepts v2 documents — old baselines
/// remain validatable (and `obs-diff` still parses them).
#[test]
fn preserved_v2_schema_accepts_v2_documents() {
    let v2_schema = json::parse(include_str!("../../../schemas/run-report-v2.schema.json"))
        .expect("schema parses");
    let fixture = include_str!("fixtures/report-v2.json");
    let doc = json::parse(fixture).expect("fixture parses");
    let errors = schema::validate(&v2_schema, &doc);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
}
