//! A GORDIAN-analogue quadratic placer: the substrate behind the paper's
//! Table IX quadrisection comparison.
//!
//! GORDIAN (Kleinhans et al.) preplaces I/O pads, minimizes quadratic
//! wirelength by solving a Laplacian system, and derives partitions by
//! splitting the resulting orderings; GORDIAN-L (Sigl et al.) approximates a
//! *linear* wirelength objective by iterative reweighting. The original tool
//! is proprietary, so this crate implements the same published mechanism
//! from scratch: a matrix-free conjugate-gradient solve over the clique net
//! model ([`solver::NetLaplacian`]), pad rings, optional linearization
//! sweeps, and the equal-area quadrant split the paper measures
//! ([`split_quadrisection`]).
//!
//! # Examples
//!
//! ```
//! use mlpart_place::{gordian_quadrisection, PlacerConfig};
//! use mlpart_hypergraph::{HypergraphBuilder, ModuleId, metrics};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::with_unit_areas(16);
//! for y in 0..4usize {
//!     for x in 0..4usize {
//!         let i = y * 4 + x;
//!         if x + 1 < 4 { b.add_net([i, i + 1])?; }
//!         if y + 1 < 4 { b.add_net([i, i + 4])?; }
//!     }
//! }
//! let h = b.build()?;
//! let pads = vec![ModuleId::new(0), ModuleId::new(3), ModuleId::new(12), ModuleId::new(15)];
//! let (partition, placement) = gordian_quadrisection(&h, &pads, &PlacerConfig::default());
//! assert_eq!(partition.k(), 4);
//! assert!(placement.hpwl(&h) > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod placer;
pub mod solver;

pub use placer::{
    gordian_quadrisection, pad_ring, quadratic_placement, split_quadrisection, Placement,
    PlacerConfig,
};
pub use solver::NetLaplacian;
