//! The GORDIAN-analogue quadratic placer and its quadrisection split.
//!
//! The paper's Table IX compares multilevel quadrisection against the 4-way
//! partitions implied by GORDIAN / GORDIAN-L placements: pads are preplaced,
//! a system of equations places the movable modules by minimizing quadratic
//! (GORDIAN) or linearized (GORDIAN-L) wirelength, the horizontal ordering
//! is split into two equal halves, and a vertical ordering splits each half
//! again. This module reproduces that mechanism on the synthetic suite.

use crate::solver::NetLaplacian;
use mlpart_hypergraph::{Hypergraph, ModuleId, Partition};

/// Configuration for the quadratic placer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerConfig {
    /// Conjugate-gradient iteration cap per solve.
    pub cg_max_iters: usize,
    /// Relative CG residual tolerance.
    pub cg_tol: f64,
    /// GORDIAN-L linearization sweeps: `0` is plain GORDIAN (quadratic);
    /// each sweep reweights every net by `1/max(span, ε)` and re-solves,
    /// approximating the linear-wirelength objective of Sigl et al.
    pub linearize_iters: usize,
    /// Nets larger than this are ignored by the solver.
    pub max_net_size: usize,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            cg_max_iters: 600,
            cg_tol: 1e-7,
            linearize_iters: 0,
            max_net_size: 200,
        }
    }
}

impl PlacerConfig {
    /// The GORDIAN-L analogue: three linearization sweeps.
    pub fn gordian_l() -> Self {
        PlacerConfig {
            linearize_iters: 3,
            ..PlacerConfig::default()
        }
    }
}

/// A placement: one `(x, y)` coordinate per module in the unit square.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// X coordinates, dense by module index.
    pub x: Vec<f64>,
    /// Y coordinates, dense by module index.
    pub y: Vec<f64>,
}

impl Placement {
    /// Half-perimeter wirelength `Σ_e (span_x(e) + span_y(e))` — the
    /// standard placement quality metric, exposed for diagnostics.
    pub fn hpwl(&self, h: &Hypergraph) -> f64 {
        let mut total = 0.0;
        for e in h.net_ids() {
            let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in h.pins(e) {
                let (px, py) = (self.x[v.index()], self.y[v.index()]);
                xmin = xmin.min(px);
                xmax = xmax.max(px);
                ymin = ymin.min(py);
                ymax = ymax.max(py);
            }
            total += (xmax - xmin) + (ymax - ymin);
        }
        total
    }
}

/// Distributes pads evenly around the unit-square periphery (in list order,
/// counter-clockwise from the origin), the way a real design's I/O ring
/// surrounds the core.
pub fn pad_ring(pads: &[ModuleId]) -> Vec<(ModuleId, (f64, f64))> {
    let n = pads.len();
    pads.iter()
        .enumerate()
        .map(|(i, &v)| {
            let t = i as f64 / n.max(1) as f64; // position along the perimeter
            let s = 4.0 * t;
            let xy = if s < 1.0 {
                (s, 0.0)
            } else if s < 2.0 {
                (1.0, s - 1.0)
            } else if s < 3.0 {
                (3.0 - s, 1.0)
            } else {
                (0.0, 4.0 - s)
            };
            (v, xy)
        })
        .collect()
}

/// Solves for a placement with the given pads fixed.
///
/// With `cfg.linearize_iters == 0` this is the GORDIAN quadratic solve; with
/// sweeps it approximates GORDIAN-L's linear objective by iterative
/// reweighting. Modules not reached by any (solver-visible) net sit at the
/// square's center.
///
/// # Panics
///
/// Panics if a pad id is out of range or `pads` is empty (the Laplacian
/// would be singular: GORDIAN requires preplaced I/O pads).
pub fn quadratic_placement(
    h: &Hypergraph,
    pads: &[(ModuleId, (f64, f64))],
    cfg: &PlacerConfig,
) -> Placement {
    assert!(!pads.is_empty(), "quadratic placement requires fixed pads");
    let n = h.num_modules();
    let mut fixed = vec![false; n];
    let mut x = vec![0.5; n];
    let mut y = vec![0.5; n];
    for &(v, (px, py)) in pads {
        fixed[v.index()] = true;
        x[v.index()] = px;
        y[v.index()] = py;
    }
    let mut lap = NetLaplacian::new(h, fixed, cfg.max_net_size);
    lap.solve(&mut x, cfg.cg_tol, cfg.cg_max_iters);
    lap.solve(&mut y, cfg.cg_tol, cfg.cg_max_iters);

    // GORDIAN-L analogue: reweight each net by the inverse of its current
    // bounding-box span so long nets stop dominating, then re-solve.
    const EPS: f64 = 1e-4;
    for _ in 0..cfg.linearize_iters {
        let mut scale = vec![1.0; h.num_nets()];
        for e in h.net_ids() {
            if h.net_size(e) > cfg.max_net_size {
                continue;
            }
            let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in h.pins(e) {
                xmin = xmin.min(x[v.index()]);
                xmax = xmax.max(x[v.index()]);
                ymin = ymin.min(y[v.index()]);
                ymax = ymax.max(y[v.index()]);
            }
            let span = (xmax - xmin) + (ymax - ymin);
            scale[e.index()] = 1.0 / span.max(EPS);
        }
        lap.set_net_scale(&scale);
        lap.solve(&mut x, cfg.cg_tol, cfg.cg_max_iters);
        lap.solve(&mut y, cfg.cg_tol, cfg.cg_max_iters);
    }
    Placement { x, y }
}

/// Splits a placement into four equal-area quadrant clusters the way the
/// paper evaluates GORDIAN (footnote 3): the horizontal ordering is split
/// into an equal-area left and right half, then each half's vertical
/// ordering is split again. Part ids: 0 = left-bottom, 1 = left-top,
/// 2 = right-bottom, 3 = right-top. Coordinate ties break by module index,
/// so the split is deterministic.
pub fn split_quadrisection(h: &Hypergraph, placement: &Placement) -> Partition {
    let n = h.num_modules();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        placement.x[a as usize]
            .total_cmp(&placement.x[b as usize])
            .then(a.cmp(&b))
    });
    let total = h.total_area();
    let mut assignment = vec![0u32; n];
    // Equal-area horizontal split.
    let mut acc = 0u64;
    let mut split_at = n;
    for (pos, &raw) in order.iter().enumerate() {
        if acc * 2 >= total {
            split_at = pos;
            break;
        }
        acc += h.area(ModuleId::from(raw));
    }
    let halves = [&order[..split_at], &order[split_at..]];
    for (half_idx, half) in halves.iter().enumerate() {
        let mut vert: Vec<u32> = half.to_vec();
        vert.sort_by(|&a, &b| {
            placement.y[a as usize]
                .total_cmp(&placement.y[b as usize])
                .then(a.cmp(&b))
        });
        let half_area: u64 = vert.iter().map(|&raw| h.area(ModuleId::from(raw))).sum();
        let mut acc = 0u64;
        for &raw in &vert {
            let part = if acc * 2 < half_area {
                2 * half_idx as u32 // bottom
            } else {
                2 * half_idx as u32 + 1 // top
            };
            assignment[raw as usize] = part;
            acc += h.area(ModuleId::from(raw));
        }
    }
    Partition::from_assignment(h, 4, assignment).expect("quadrant ids are dense")
}

/// The full GORDIAN-style quadrisection pipeline: ring the pads, place, and
/// split. Returns the 4-way partition and the placement it came from.
///
/// # Panics
///
/// Panics if `pads` is empty.
pub fn gordian_quadrisection(
    h: &Hypergraph,
    pads: &[ModuleId],
    cfg: &PlacerConfig,
) -> (Partition, Placement) {
    let ring = pad_ring(pads);
    let placement = quadratic_placement(h, &ring, cfg);
    let partition = split_quadrisection(h, &placement);
    (partition, placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::{metrics, HypergraphBuilder};

    fn grid(w: usize, hgt: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(w * hgt);
        for yy in 0..hgt {
            for xx in 0..w {
                let i = yy * w + xx;
                if xx + 1 < w {
                    b.add_net([i, i + 1]).unwrap();
                }
                if yy + 1 < hgt {
                    b.add_net([i, i + w]).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn pad_ring_lands_on_perimeter() {
        let pads: Vec<ModuleId> = (0..8).map(ModuleId::new).collect();
        let ring = pad_ring(&pads);
        assert_eq!(ring.len(), 8);
        for &(_, (x, y)) in &ring {
            let on_edge = x == 0.0 || x == 1.0 || y == 0.0 || y == 1.0;
            assert!(on_edge, "({x}, {y}) not on the unit-square boundary");
        }
        // First pad at the origin corner.
        assert_eq!(ring[0].1, (0.0, 0.0));
    }

    #[test]
    fn grid_placement_recovers_geometry() {
        // Fix the 4 corners of a 5x5 grid at their true positions: the
        // solution of the quadratic program is the grid itself (harmonic
        // coordinates), so interior modules recover their row/column order.
        let h = grid(5, 5);
        let pads = vec![
            (ModuleId::new(0), (0.0, 0.0)),
            (ModuleId::new(4), (1.0, 0.0)),
            (ModuleId::new(20), (0.0, 1.0)),
            (ModuleId::new(24), (1.0, 1.0)),
        ];
        let pl = quadratic_placement(&h, &pads, &PlacerConfig::default());
        // Center module (12) should sit near the middle.
        assert!((pl.x[12] - 0.5).abs() < 1e-4, "x12 = {}", pl.x[12]);
        assert!((pl.y[12] - 0.5).abs() < 1e-4, "y12 = {}", pl.y[12]);
        // X increases along each row.
        for row in 0..5 {
            for col in 0..4 {
                let i = row * 5 + col;
                assert!(pl.x[i] < pl.x[i + 1] + 1e-9, "row {row} col {col}");
            }
        }
    }

    #[test]
    fn quadrisection_splits_grid_into_quadrants() {
        let h = grid(6, 6);
        let pads = vec![
            (ModuleId::new(0), (0.0, 0.0)),
            (ModuleId::new(5), (1.0, 0.0)),
            (ModuleId::new(30), (0.0, 1.0)),
            (ModuleId::new(35), (1.0, 1.0)),
        ];
        let pl = quadratic_placement(&h, &pads, &PlacerConfig::default());
        let p = split_quadrisection(&h, &pl);
        assert_eq!(p.k(), 4);
        let sizes = p.part_sizes();
        assert_eq!(sizes, vec![9, 9, 9, 9], "equal-sized clusters");
        // A geometric quadrisection of a 6x6 mesh cuts 2 * 6 = 12 mesh nets.
        assert_eq!(metrics::cut(&h, &p), 12);
    }

    #[test]
    fn split_is_deterministic_under_ties() {
        // All modules at the same point: split must still be equal and
        // deterministic (ties broken by index).
        let h = grid(4, 4);
        let pl = Placement {
            x: vec![0.5; 16],
            y: vec![0.5; 16],
        };
        let p1 = split_quadrisection(&h, &pl);
        let p2 = split_quadrisection(&h, &pl);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(p1.part_sizes(), vec![4, 4, 4, 4]);
    }

    #[test]
    fn gordian_l_reduces_hpwl() {
        // Linearization should not increase HPWL on a clustered netlist.
        let h = grid(8, 8);
        let pads: Vec<ModuleId> = vec![0, 7, 56, 63].into_iter().map(ModuleId::new).collect();
        let ring = pad_ring(&pads);
        let quad = quadratic_placement(&h, &ring, &PlacerConfig::default());
        let lin = quadratic_placement(&h, &ring, &PlacerConfig::gordian_l());
        assert!(
            lin.hpwl(&h) <= quad.hpwl(&h) * 1.05,
            "GORDIAN-L {} vs GORDIAN {}",
            lin.hpwl(&h),
            quad.hpwl(&h)
        );
    }

    #[test]
    fn full_pipeline_produces_valid_partition() {
        let h = grid(10, 10);
        let pads: Vec<ModuleId> = vec![0, 9, 90, 99].into_iter().map(ModuleId::new).collect();
        let (p, pl) = gordian_quadrisection(&h, &pads, &PlacerConfig::default());
        assert!(p.validate(&h));
        assert_eq!(pl.x.len(), 100);
        let sizes = p.part_sizes();
        assert!(sizes.iter().all(|&s| s == 25), "{sizes:?}");
    }

    #[test]
    fn hpwl_of_known_placement() {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1, 2]).unwrap();
        let h = b.build().unwrap();
        let pl = Placement {
            x: vec![0.0, 0.5, 1.0],
            y: vec![0.0, 1.0, 0.0],
        };
        assert!((pl.hpwl(&h) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires fixed pads")]
    fn rejects_empty_pads() {
        let h = grid(3, 3);
        let _ = quadratic_placement(&h, &[], &PlacerConfig::default());
    }
}
