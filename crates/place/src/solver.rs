//! Matrix-free conjugate-gradient solver for quadratic placement.
//!
//! GORDIAN minimizes quadratic wirelength `x'Lx` subject to fixed pads by
//! solving a Laplacian linear system. We model each net as a uniform clique
//! with edge weight `1/(|e|−1)` (so every net contributes total weight
//! `|e|/2` regardless of size — the standard clique net model), optionally
//! scaled by a per-net multiplier (used by the GORDIAN-L linearization).
//! The Laplacian is never materialized: one application walks the nets,
//! which keeps the solver `O(pins)` per iteration.

use mlpart_hypergraph::Hypergraph;

/// The clique-model Laplacian operator of a netlist with per-net weight
/// multipliers and a fixed-coordinate (pad) mask.
#[derive(Debug, Clone)]
pub struct NetLaplacian<'a> {
    h: &'a Hypergraph,
    /// Per-net multiplier on the base clique weight (1.0 = plain quadratic).
    net_scale: Vec<f64>,
    /// Nets larger than this are skipped entirely.
    max_net_size: usize,
    /// `true` where the coordinate is fixed (pads).
    fixed: Vec<bool>,
    /// Diagonal of the Laplacian restricted to free variables.
    diag: Vec<f64>,
}

impl<'a> NetLaplacian<'a> {
    /// Builds the operator. `fixed[v]` marks pad coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `fixed.len() != h.num_modules()`.
    pub fn new(h: &'a Hypergraph, fixed: Vec<bool>, max_net_size: usize) -> Self {
        assert_eq!(fixed.len(), h.num_modules(), "fixed mask has wrong length");
        let mut lap = NetLaplacian {
            h,
            net_scale: vec![1.0; h.num_nets()],
            max_net_size,
            fixed,
            diag: Vec::new(),
        };
        lap.rebuild_diag();
        lap
    }

    /// Replaces the per-net weight multipliers (GORDIAN-L reweighting) and
    /// refreshes the cached diagonal.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the net count.
    pub fn set_net_scale(&mut self, scale: &[f64]) {
        assert_eq!(scale.len(), self.h.num_nets(), "scale has wrong length");
        self.net_scale.copy_from_slice(scale);
        self.rebuild_diag();
    }

    fn rebuild_diag(&mut self) {
        let n = self.h.num_modules();
        let mut diag = vec![0.0; n];
        for e in self.h.net_ids() {
            let size = self.h.net_size(e);
            if size > self.max_net_size {
                continue;
            }
            // Clique edge weight w = weight*scale/(size-1); each member's
            // diagonal entry gains w*(size-1) = weight*scale.
            let s = self.net_scale[e.index()] * self.h.net_weight(e) as f64;
            for &v in self.h.pins(e) {
                diag[v.index()] += s;
            }
        }
        self.diag = diag;
    }

    /// Marks every module transitively connected to a fixed coordinate
    /// through solver-visible nets (union-find over the nets).
    fn anchored_mask(&self) -> Vec<bool> {
        let n = self.h.num_modules();
        let mut root: Vec<u32> = (0..n as u32).collect();
        fn find(root: &mut [u32], mut v: u32) -> u32 {
            while root[v as usize] != v {
                root[v as usize] = root[root[v as usize] as usize];
                v = root[v as usize];
            }
            v
        }
        for e in self.h.net_ids() {
            if self.h.net_size(e) > self.max_net_size {
                continue;
            }
            let pins = self.h.pins(e);
            let first = pins[0].raw();
            for &w in &pins[1..] {
                let (a, b) = (find(&mut root, first), find(&mut root, w.raw()));
                if a != b {
                    root[a as usize] = b;
                }
            }
        }
        let mut root_anchored = vec![false; n];
        for i in 0..n {
            if self.fixed[i] {
                let r = find(&mut root, i as u32);
                root_anchored[r as usize] = true;
            }
        }
        (0..n)
            .map(|i| root_anchored[find(&mut root, i as u32) as usize])
            .collect()
    }

    /// `y = L·x` over all modules (fixed entries of `x` are read, and `y` is
    /// written everywhere; callers mask as needed).
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        for e in self.h.net_ids() {
            let size = self.h.net_size(e);
            if size > self.max_net_size {
                continue;
            }
            let w = self.net_scale[e.index()] * self.h.net_weight(e) as f64 / (size as f64 - 1.0);
            let mut sum = 0.0;
            for &v in self.h.pins(e) {
                sum += x[v.index()];
            }
            for &v in self.h.pins(e) {
                y[v.index()] += w * (size as f64 * x[v.index()] - sum);
            }
        }
    }

    /// Solves `L_ff x_f = −L_fc x_c` for the free coordinates, where `x`
    /// enters holding pad values at fixed entries (free entries are the
    /// initial guess) and exits holding the solution. Free variables with a
    /// zero diagonal (isolated modules) — and, more generally, variables not
    /// transitively connected to any fixed pad through solver-visible nets —
    /// keep their initial value: on such components the system is singular
    /// (any constant solves it), and letting them into CG would abort the
    /// solve on a zero-curvature direction before the anchored part
    /// converges.
    ///
    /// Returns the number of CG iterations used.
    pub fn solve(&self, x: &mut [f64], tol: f64, max_iters: usize) -> usize {
        let n = x.len();
        assert_eq!(n, self.h.num_modules(), "vector has wrong length");
        let anchored = self.anchored_mask();
        let free = |i: usize| !self.fixed[i] && self.diag[i] > 0.0 && anchored[i];

        // b = −(L x_pad)_f with x_pad zero at free entries.
        let mut pad_only = vec![0.0; n];
        for i in 0..n {
            if self.fixed[i] {
                pad_only[i] = x[i];
            }
        }
        let mut b = vec![0.0; n];
        self.apply(&pad_only, &mut b);
        for v in b.iter_mut() {
            *v = -*v;
        }

        // r = b − A x_f (A = L_ff, applied by zeroing fixed entries).
        let mut xf = vec![0.0; n];
        for i in 0..n {
            if free(i) {
                xf[i] = x[i];
            }
        }
        let mut ax = vec![0.0; n];
        self.apply(&xf, &mut ax);
        let mut r = vec![0.0; n];
        for i in 0..n {
            if free(i) {
                r[i] = b[i] - ax[i];
            }
        }
        // Jacobi-preconditioned CG.
        let mut z = vec![0.0; n];
        for i in 0..n {
            if free(i) {
                z[i] = r[i] / self.diag[i];
            }
        }
        let mut p = z.clone();
        let mut rz: f64 = (0..n).filter(|&i| free(i)).map(|i| r[i] * z[i]).sum();
        let b_norm: f64 = (0..n)
            .filter(|&i| free(i))
            .map(|i| b[i] * b[i])
            .sum::<f64>()
            .sqrt()
            .max(1e-300);

        let mut iters = 0;
        let mut ap = vec![0.0; n];
        while iters < max_iters {
            let r_norm: f64 = (0..n)
                .filter(|&i| free(i))
                .map(|i| r[i] * r[i])
                .sum::<f64>()
                .sqrt();
            if r_norm <= tol * b_norm {
                break;
            }
            self.apply(&p, &mut ap);
            let pap: f64 = (0..n).filter(|&i| free(i)).map(|i| p[i] * ap[i]).sum();
            if pap <= 0.0 {
                break; // numerically singular direction
            }
            let alpha = rz / pap;
            for i in 0..n {
                if free(i) {
                    xf[i] += alpha * p[i];
                    r[i] -= alpha * ap[i];
                }
            }
            for i in 0..n {
                if free(i) {
                    z[i] = r[i] / self.diag[i];
                }
            }
            let rz_new: f64 = (0..n).filter(|&i| free(i)).map(|i| r[i] * z[i]).sum();
            let beta = rz_new / rz.max(1e-300);
            rz = rz_new;
            for i in 0..n {
                if free(i) {
                    p[i] = z[i] + beta * p[i];
                } else {
                    p[i] = 0.0;
                }
            }
            iters += 1;
        }
        for i in 0..n {
            if free(i) {
                x[i] = xf[i];
            }
        }
        iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::HypergraphBuilder;

    fn path3() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1]).unwrap();
        b.add_net([1, 2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn middle_of_a_path_lands_between_fixed_ends() {
        // Fix 0 at 0.0 and 2 at 1.0: quadratic optimum puts 1 at 0.5.
        let h = path3();
        let lap = NetLaplacian::new(&h, vec![true, false, true], 100);
        let mut x = vec![0.0, 0.33, 1.0];
        let iters = lap.solve(&mut x, 1e-10, 100);
        assert!(iters > 0);
        assert!((x[1] - 0.5).abs() < 1e-8, "x1 = {}", x[1]);
        assert_eq!(x[0], 0.0);
        assert_eq!(x[2], 1.0);
    }

    #[test]
    fn chain_spreads_evenly() {
        // 0 -- 1 -- 2 -- 3 -- 4 with ends fixed: interior at 1/4, 1/2, 3/4.
        let mut b = HypergraphBuilder::with_unit_areas(5);
        for i in 0..4 {
            b.add_net([i, i + 1]).unwrap();
        }
        let h = b.build().unwrap();
        let fixed = vec![true, false, false, false, true];
        let lap = NetLaplacian::new(&h, fixed, 100);
        let mut x = vec![0.0, 0.0, 0.0, 0.0, 1.0];
        lap.solve(&mut x, 1e-10, 200);
        for (i, want) in [(1, 0.25), (2, 0.5), (3, 0.75)] {
            assert!((x[i] - want).abs() < 1e-7, "x[{i}] = {}", x[i]);
        }
    }

    #[test]
    fn multi_pin_net_centers_free_module() {
        // One 3-pin net {0,1,2} with 0 fixed at 0 and 2 fixed at 1: the
        // clique model places 1 at the mean of its neighbors.
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1, 2]).unwrap();
        let h = b.build().unwrap();
        let lap = NetLaplacian::new(&h, vec![true, false, true], 100);
        let mut x = vec![0.0, 0.9, 1.0];
        lap.solve(&mut x, 1e-10, 100);
        assert!((x[1] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn isolated_module_stays_put() {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        let lap = NetLaplacian::new(&h, vec![true, false, false], 100);
        let mut x = vec![1.0, 0.0, 0.42];
        lap.solve(&mut x, 1e-10, 100);
        assert!((x[1] - 1.0).abs() < 1e-8, "pulled to its pad");
        assert_eq!(x[2], 0.42, "isolated module untouched");
    }

    #[test]
    fn apply_matches_dense_laplacian_on_triangle() {
        // Net {0,1,2}: L = w(3I - J), w = 1/2.
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1, 2]).unwrap();
        let h = b.build().unwrap();
        let lap = NetLaplacian::new(&h, vec![false; 3], 100);
        let x = vec![1.0, 2.0, 4.0];
        let mut y = vec![0.0; 3];
        lap.apply(&x, &mut y);
        let s: f64 = 7.0;
        for i in 0..3 {
            let want = 0.5 * (3.0 * x[i] - s);
            assert!((y[i] - want).abs() < 1e-12);
        }
        // Laplacian annihilates constants.
        let ones = vec![1.0; 3];
        lap.apply(&ones, &mut y);
        assert!(y.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn net_scale_reweights() {
        let h = path3();
        let mut lap = NetLaplacian::new(&h, vec![true, false, true], 100);
        // Weight the right net 3x: module 1 is pulled towards x2 = 1.
        lap.set_net_scale(&[1.0, 3.0]);
        let mut x = vec![0.0, 0.0, 1.0];
        lap.solve(&mut x, 1e-10, 100);
        assert!((x[1] - 0.75).abs() < 1e-8, "x1 = {}", x[1]);
    }

    #[test]
    fn oversized_nets_are_ignored() {
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0, 1]).unwrap();
        b.add_net([0, 1, 2, 3]).unwrap();
        let h = b.build().unwrap();
        let lap = NetLaplacian::new(&h, vec![true, false, false, false], 3);
        let mut x = vec![1.0, 0.0, 0.3, 0.4];
        lap.solve(&mut x, 1e-10, 100);
        assert!((x[1] - 1.0).abs() < 1e-8);
        // 2 and 3 only touch the ignored net: zero diagonal, untouched.
        assert_eq!(x[2], 0.3);
        assert_eq!(x[3], 0.4);
    }

    #[test]
    #[should_panic(expected = "fixed mask has wrong length")]
    fn rejects_bad_mask() {
        let h = path3();
        let _ = NetLaplacian::new(&h, vec![true], 100);
    }
}
