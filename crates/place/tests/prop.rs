//! Property-based tests for the quadratic placer: the Laplacian operator is
//! positive semidefinite and annihilates constants, CG solutions satisfy the
//! optimality (stationarity) condition, placements stay within the convex
//! hull of the pads, and the quadrant split is a balanced 4-way partition.

use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::{Hypergraph, HypergraphBuilder, ModuleId};
use mlpart_place::{
    pad_ring, quadratic_placement, split_quadrisection, NetLaplacian, PlacerConfig,
};
use proptest::prelude::*;
use rand::Rng;

fn arb_netlist() -> impl Strategy<Value = (usize, Vec<Vec<usize>>)> {
    (4usize..24).prop_flat_map(|n| {
        let nets = proptest::collection::vec(proptest::collection::vec(0usize..n, 2..5), 1..40);
        (Just(n), nets)
    })
}

fn build(n: usize, nets: &[Vec<usize>]) -> Hypergraph {
    let mut b = HypergraphBuilder::with_unit_areas(n);
    for net in nets {
        b.add_net(net.iter().copied()).expect("in range");
    }
    b.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn laplacian_is_psd_and_kills_constants((n, nets) in arb_netlist(), seed in 0u64..100) {
        let h = build(n, &nets);
        let lap = NetLaplacian::new(&h, vec![false; n], 100);
        let mut rng = seeded_rng(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; n];
        lap.apply(&x, &mut y);
        // x' L x >= 0 (PSD).
        let quad: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        prop_assert!(quad >= -1e-9, "x'Lx = {quad}");
        // L * 1 = 0.
        let ones = vec![1.0; n];
        lap.apply(&ones, &mut y);
        prop_assert!(y.iter().all(|v| v.abs() < 1e-9));
        // Row sums vanish: L * x shifted by a constant gives the same result.
        let shifted: Vec<f64> = x.iter().map(|v| v + 5.0).collect();
        let mut y2 = vec![0.0; n];
        lap.apply(&shifted, &mut y2);
        lap.apply(&x, &mut y);
        for (a, b) in y.iter().zip(&y2) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_solution_is_stationary((n, nets) in arb_netlist(), seed in 0u64..100) {
        let h = build(n, &nets);
        // Fix two modules as pads at 0 and 1.
        let mut fixed = vec![false; n];
        fixed[0] = true;
        fixed[1] = true;
        let lap = NetLaplacian::new(&h, fixed.clone(), 100);
        let mut rng = seeded_rng(seed);
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        x[0] = 0.0;
        x[1] = 1.0;
        lap.solve(&mut x, 1e-10, 2000);
        // At the optimum, (L x) vanishes on free coordinates that are
        // transitively connected to a pad (floating components make the
        // system singular there; CG legitimately stops on them).
        let mut root: Vec<usize> = (0..n).collect();
        fn find(root: &mut [usize], mut v: usize) -> usize {
            while root[v] != v {
                root[v] = root[root[v]];
                v = root[v];
            }
            v
        }
        for e in h.net_ids() {
            let first = h.pins(e)[0].index();
            for &w in &h.pins(e)[1..] {
                let (a, b) = (find(&mut root, first), find(&mut root, w.index()));
                if a != b {
                    root[a] = b;
                }
            }
        }
        let pad_roots: Vec<usize> = vec![find(&mut root, 0), find(&mut root, 1)];
        let mut y = vec![0.0; n];
        lap.apply(&x, &mut y);
        for v in h.modules() {
            let i = v.index();
            let anchored = pad_roots.contains(&find(&mut root, i));
            if !fixed[i] && h.degree(v) > 0 && anchored {
                prop_assert!(y[i].abs() < 1e-6, "residual {} at {}", y[i], i);
            }
        }
    }

    #[test]
    fn placement_stays_in_pad_hull((n, nets) in arb_netlist()) {
        let h = build(n, &nets);
        let pads: Vec<ModuleId> = vec![ModuleId::new(0), ModuleId::new(1)];
        let ring = pad_ring(&pads);
        let pl = quadratic_placement(&h, &ring, &PlacerConfig::default());
        // Harmonic functions obey the maximum principle: every coordinate
        // lies within [min pad coord, max pad coord] or is the untouched 0.5
        // default for modules unreachable from pads.
        for v in h.modules() {
            let (x, y) = (pl.x[v.index()], pl.y[v.index()]);
            prop_assert!((-1e-6..=1.0 + 1e-6).contains(&x), "x = {x}");
            prop_assert!((-1e-6..=1.0 + 1e-6).contains(&y), "y = {y}");
        }
    }

    #[test]
    fn quadrant_split_is_balanced_4way((n, nets) in arb_netlist(), seed in 0u64..50) {
        let h = build(n, &nets);
        let mut rng = seeded_rng(seed);
        let pl = mlpart_place::Placement {
            x: (0..n).map(|_| rng.gen_range(0.0..1.0)).collect(),
            y: (0..n).map(|_| rng.gen_range(0.0..1.0)).collect(),
        };
        let p = split_quadrisection(&h, &pl);
        prop_assert!(p.validate(&h));
        prop_assert_eq!(p.k(), 4);
        // Quadrant populations differ by at most ~half between the two
        // halves and within halves (equal-area split on unit areas means
        // |size difference| <= 1 per split).
        let sizes = p.part_sizes();
        let left = sizes[0] + sizes[1];
        let right = sizes[2] + sizes[3];
        prop_assert!(left.abs_diff(right) <= 1, "{sizes:?}");
        prop_assert!(sizes[0].abs_diff(sizes[1]) <= 1, "{sizes:?}");
        prop_assert!(sizes[2].abs_diff(sizes[3]) <= 1, "{sizes:?}");
    }
}
