//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this path-replaced
//! crate implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, range/tuple/`Just`/`any::<bool>()`
//! strategies, [`collection::vec`], `prop_flat_map`/`prop_map`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate, none of which the tests rely on:
//!
//! * No shrinking — a failing case reports its inputs (via the panic message
//!   of the assertion) but is not minimized.
//! * Case generation is driven by a fixed-seed [`rand::rngs::SmallRng`], so
//!   every run explores the same cases: failures are exactly reproducible.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject(String),
    /// `prop_assert*` failed; the test fails.
    Fail(String),
}

/// Per-case result used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one shape.
///
/// The real crate splits generation (`Strategy`) from the generated tree
/// (`ValueTree`); without shrinking the strategy can produce values
/// directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut SmallRng) -> Self::Value;

    /// Derives a strategy from each generated value (the flat-mapped
    /// strategy is itself sampled).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
        let intermediate = self.base.new_value(rng);
        (self.f)(intermediate).new_value(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
        (self.f)(self.base.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<u64>() as u32
    }
}

/// Strategy over the whole domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: a fixed length or a half-open range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// A length drawn uniformly from the range.
        Span(Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Span(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
            let len = match &self.size {
                SizeRange::Fixed(n) => *n,
                SizeRange::Span(r) => rng.gen_range(r.clone()),
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Drives the generated cases of one `proptest!` test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: SmallRng,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner whose random stream is derived from the test name,
    /// so adding a test never perturbs the cases of existing ones.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        TestRunner {
            config,
            rng: SmallRng::seed_from_u64(seed),
            name,
        }
    }

    /// Runs `body` for each generated case; panics on the first failure.
    /// Rejected cases (via `prop_assume!`) are retried without counting,
    /// up to a global attempt cap.
    pub fn run<F>(&mut self, mut body: F)
    where
        F: FnMut(&mut SmallRng) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = self.config.cases.saturating_mul(16).max(1024);
        while passed < self.config.cases {
            match body(&mut self.rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest '{}': too many rejected cases ({} passed, {} rejected)",
                            self.name, passed, rejected
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{}' failed after {} passing case(s): {}",
                        self.name, passed, msg
                    );
                }
            }
        }
    }
}

/// Defines property tests: each argument is drawn from its strategy and the
/// body re-runs for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
                runner.run(|__proptest_rng| {
                    $(
                        let $pat = $crate::Strategy::new_value(&($strat), __proptest_rng);
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_owned()));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(format!($($fmt)*)));
        }
    };
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)*)
            )));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) — {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Everything a typical property test glob-imports.
pub mod prelude {
    pub use super::collection;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<u64>)> {
        (1usize..10).prop_flat_map(|n| (Just(n), collection::vec(0u64..100, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -4i32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn flat_map_links_sizes((n, v) in arb_pair()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn any_bool_generates_both(_b in any::<bool>()) {
            // Smoke test: generation itself must work.
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(10), "det");
            runner.run(|rng| {
                out.push((0u64..1000).new_value(rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5), "fail");
        runner.run(|_rng| -> TestCaseResult {
            prop_assert!(false);
            Ok(())
        });
    }
}
