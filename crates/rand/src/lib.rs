//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this workspace has no access to crates.io, so
//! this path-replaced crate provides exactly the surface the workspace uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same algorithm real `rand` 0.8
//!   uses for `SmallRng` on 64-bit targets), seeded via SplitMix64.
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool` over the integer and float
//!   types the workspace samples.
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`.
//! * [`seq::SliceRandom`] — Fisher-Yates `shuffle` and `choose`.
//!
//! Streams are deterministic for a given seed, which is all the workspace
//! requires (every experiment threads explicit seeds). The streams do *not*
//! bit-match the real crate's: `rand`'s value-stability guarantees stop at
//! the distribution layer anyway, and every test in this repository pins its
//! expectations to the streams produced here.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed with SplitMix64 (the same
    /// scheme the real crate documents) and constructs the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniformly samples a `u64` in `[0, bound)` without modulo bias
/// (Lemire's widening-multiply rejection method). `bound` must be non-zero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types with uniform sampling over half-open and inclusive ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {
        $(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "cannot sample empty range");
                    let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                    low.wrapping_add(uniform_below(rng, span) as $t)
                }
                fn sample_range_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                ) -> Self {
                    assert!(low <= high, "cannot sample empty range");
                    let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(uniform_below(rng, span + 1) as $t)
                }
            }
        )*
    };
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "cannot sample empty range");
                    let unit: $t = Standard::sample(rng);
                    low + (high - low) * unit
                }
                fn sample_range_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                ) -> Self {
                    assert!(low <= high, "cannot sample empty range");
                    let unit: $t = Standard::sample(rng);
                    low + (high - low) * unit
                }
            }
        )*
    };
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The concrete generators offered by this stand-in.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand` 0.8's `SmallRng` on 64-bit
    /// platforms. Fast, 256-bit state, passes BigCrush; not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // The all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, SampleUniform};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

/// Everything a typical user of the real crate glob-imports.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng, Standard};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(8);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }
}
