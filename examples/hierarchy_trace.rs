//! Traces the multilevel paradigm of the paper's Figure 1: coarsening a
//! benchmark level by level, partitioning the coarsest netlist, then
//! uncoarsening with refinement — printing the cut at every step so the
//! "projected vs refined solution" structure of the figure is visible.
//!
//! ```text
//! cargo run --release --example hierarchy_trace
//! ```

use mlpart::cluster::{project, rebalance_bipart};
use mlpart::core::{Hierarchy, MlConfig};
use mlpart::fm::refine;
use mlpart::fm_partition;
use mlpart::gen::suite;
use mlpart::hypergraph::rng::seeded_rng;
use mlpart::hypergraph::{metrics, BipartBalance, Hypergraph};

fn main() {
    let circuit = suite::by_name("primary2").expect("in suite");
    let h0 = circuit.generate(1997);
    let cfg = MlConfig::clip().with_ratio(0.5);
    let mut rng = seeded_rng(3);

    println!(
        "multilevel trace on {} ({} modules)",
        circuit.name,
        h0.num_modules()
    );
    println!();

    // --- Coarsening phase (Fig. 2, steps 1-5). ---
    let hier = Hierarchy::coarsen(&h0, &cfg, &[], &mut rng);
    let m = hier.num_levels();
    println!(
        "coarsening with R = {} built {m} levels:",
        cfg.matching_ratio
    );
    for (i, size) in hier.level_sizes(&h0).iter().enumerate() {
        println!("  H{i}: {size} modules");
    }
    println!();

    // --- Initial partitioning of the coarsest netlist (step 6). ---
    let coarsest = hier.coarsest(&h0);
    let (mut p, r) = fm_partition(coarsest, None, &cfg.fm, &mut rng);
    println!("initial partitioning of H{m}: cut {}", r.cut);
    println!();

    // --- Uncoarsening phase (steps 7-9), as drawn in Figure 1. ---
    println!(
        "{:<6} {:>10} {:>12} {:>10}",
        "level", "projected", "rebalanced", "refined"
    );
    for i in (0..m).rev() {
        let fine: &Hypergraph = if i == 0 { &h0 } else { hier.level(i) };
        let mut fine_p = project(fine, hier.clustering(i), &p).expect("hierarchy levels align");
        let projected_cut = metrics::cut(fine, &fine_p);
        let balance = BipartBalance::new(fine, cfg.fm.balance_r);
        let moved = if balance.is_partition_feasible(&fine_p) {
            0
        } else {
            rebalance_bipart(fine, &mut fine_p, &balance, &mut rng)
        };
        let r = refine(fine, &mut fine_p, &cfg.fm, &mut rng);
        println!(
            "H{:<5} {:>10} {:>12} {:>10}",
            i,
            projected_cut,
            if moved > 0 {
                format!("{moved} moves")
            } else {
                "-".to_owned()
            },
            r.cut
        );
        p = fine_p;
    }
    println!();
    println!("final cut on H0: {}", metrics::cut(&h0, &p));
}
