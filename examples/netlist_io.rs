//! Round-trips a benchmark through the hMETIS `.hgr` interchange format and
//! partitions a netlist loaded from text — the workflow for users bringing
//! their own circuits.
//!
//! ```text
//! cargo run --release --example netlist_io
//! ```

use mlpart::gen::suite;
use mlpart::hypergraph::io::{read_hgr, write_hgr};
use mlpart::hypergraph::rng::seeded_rng;
use mlpart::{ml_bipartition, MlConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Export a synthetic benchmark to hMETIS text. ---
    let circuit = suite::by_name("balu").expect("in suite");
    let h = circuit.generate(1997);
    let mut text = Vec::new();
    write_hgr(&h, &mut text)?;
    println!(
        "exported {} as {} bytes of .hgr text; header: {:?}",
        circuit.name,
        text.len(),
        String::from_utf8_lossy(&text[..text.iter().position(|&b| b == b'\n').unwrap_or(8)])
    );

    // --- Re-import and verify it is the same netlist. ---
    let h2 = read_hgr(&text[..])?;
    assert_eq!(h, h2);
    println!("re-imported: identical netlist");

    // --- Partition a hand-written netlist from literal .hgr text. ---
    let custom = "\
% four gates driven by two shared nets plus a local pair
4 6
1 2 3
3 4 5 6
1 2
4 5
5 6
% trailing comment
";
    // 4 nets, 6 modules (note: header is <nets> <modules>).
    let custom_h = read_hgr(custom.as_bytes())?;
    println!(
        "custom netlist: {} modules, {} nets",
        custom_h.num_modules(),
        custom_h.num_nets()
    );
    let mut rng = seeded_rng(1);
    let (p, r) = ml_bipartition(&custom_h, &MlConfig::default(), &mut rng);
    println!(
        "partitioned custom netlist: cut {} sides {:?}",
        r.cut,
        p.part_sizes()
    );
    Ok(())
}
