//! The §III-C / Table IX scenario: quadrisection as the core of a top-down
//! placement flow, comparing multilevel quadrisection (with pre-assigned
//! pads) against the GORDIAN-style analytical-placement split.
//!
//! ```text
//! cargo run --release --example placement_flow
//! ```

use mlpart::gen::suite;
use mlpart::hypergraph::metrics;
use mlpart::hypergraph::rng::seeded_rng;
use mlpart::place::{gordian_quadrisection, pad_ring, PlacerConfig};
use mlpart::{ml_kway, MlKwayConfig};

fn main() {
    let circuit = suite::by_name("primary1").expect("in suite");
    let (h, pads) = circuit.generate_with_pads(1997);
    println!(
        "{}: {} modules, {} nets, {} pads on the I/O ring",
        circuit.name,
        h.num_modules(),
        h.num_nets(),
        pads.len()
    );
    println!();

    // --- GORDIAN-style: place quadratically with fixed pads, then split
    // into four equal quadrants (the paper's comparison point). ---
    let (g_part, g_place) = gordian_quadrisection(&h, &pads, &PlacerConfig::default());
    println!(
        "GORDIAN   quadrisection: cut {}  (HPWL {:.1})",
        metrics::cut(&h, &g_part),
        g_place.hpwl(&h)
    );
    let (gl_part, gl_place) = gordian_quadrisection(&h, &pads, &PlacerConfig::gordian_l());
    println!(
        "GORDIAN-L quadrisection: cut {}  (HPWL {:.1})",
        metrics::cut(&h, &gl_part),
        gl_place.hpwl(&h)
    );
    println!();

    // --- Multilevel quadrisection with the pads pre-assigned to the
    // quadrant their ring position falls into (§III-C pre-assignment). ---
    let fixed: Vec<_> = pad_ring(&pads)
        .into_iter()
        .map(|(v, (x, y))| {
            let part = 2 * u32::from(x >= 0.5) + u32::from(y >= 0.5);
            (v, part)
        })
        .collect();
    let mut rng = seeded_rng(5);
    let mut best = u64::MAX;
    for _ in 0..5 {
        let (p, r) = ml_kway(&h, &MlKwayConfig::default(), &fixed, &mut rng);
        best = best.min(r.cut);
        assert!(fixed.iter().all(|&(v, part)| p.part(v) == part));
    }
    println!("ML_F multilevel quadrisection (5 runs, pads fixed): best cut {best}");
    println!();
    println!(
        "shape: the move-based multilevel quadrisection should beat the \
         placement-derived split, as in the paper's Table IX."
    );
}
