//! Quickstart: build a netlist, run the paper's ML algorithm, inspect the
//! result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mlpart::hypergraph::rng::seeded_rng;
use mlpart::hypergraph::{metrics, BipartBalance};
use mlpart::{fm_partition, ml_bipartition, FmConfig, HypergraphBuilder, MlConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Build a netlist hypergraph. ---
    // Two 64-module "IP blocks" with dense internal structure, joined by a
    // 3-pin bus net. The natural bisection cuts exactly that one net.
    let half = 64usize;
    let mut builder = HypergraphBuilder::with_unit_areas(2 * half);
    for base in [0, half] {
        for i in 0..half {
            builder.add_net([base + i, base + (i + 1) % half])?;
            builder.add_net([base + i, base + (i + 5) % half])?;
        }
    }
    builder.add_net([half - 1, half, half + 1])?;
    let h = builder.build()?;
    println!(
        "netlist: {} modules, {} nets, {} pins",
        h.num_modules(),
        h.num_nets(),
        h.num_pins()
    );

    // --- 2. Flat FM from a random start (the 1982 baseline). ---
    let mut rng = seeded_rng(7);
    let (fm_solution, fm_result) = fm_partition(&h, None, &FmConfig::default(), &mut rng);
    println!(
        "flat FM:  cut {} after {} passes",
        fm_result.cut, fm_result.passes
    );

    // --- 3. The paper's ML algorithm (ML_C variant, slow coarsening). ---
    let cfg = MlConfig::clip().with_ratio(0.5);
    let (ml_solution, ml_result) = ml_bipartition(&h, &cfg, &mut rng);
    println!(
        "ML_C:     cut {} using {} levels (sizes {:?})",
        ml_result.cut, ml_result.levels, ml_result.level_sizes
    );

    // --- 4. Verify balance and cut. ---
    let balance = BipartBalance::new(&h, 0.1);
    assert!(balance.is_partition_feasible(&ml_solution));
    assert_eq!(ml_result.cut, metrics::cut(&h, &ml_solution));
    assert!(ml_result.cut <= fm_result.cut);
    println!(
        "sides: {} / {} area within [{}, {}]",
        ml_solution.part_area(0),
        ml_solution.part_area(1),
        balance.lower(),
        balance.upper()
    );
    let _ = fm_solution;
    Ok(())
}
