//! Weighted partitioning: non-unit module areas (macros next to standard
//! cells), weighted nets (buses), and the netD benchmark format.
//!
//! The paper's experiments use unit areas and unweighted nets; this example
//! exercises the general machinery a real design needs.
//!
//! ```text
//! cargo run --release --example weighted_design
//! ```

use mlpart::hypergraph::netd::{module_name, read_netd_with_areas};
use mlpart::hypergraph::rng::seeded_rng;
use mlpart::hypergraph::{metrics, HypergraphBuilder};
use mlpart::{ml_bipartition, BipartBalance, MlConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A design with two macros (area 40) and 32 standard cells. ---
    let mut areas = vec![1u64; 34];
    areas[0] = 40; // macro A
    areas[17] = 40; // macro B
    let mut b = HypergraphBuilder::new(areas);
    for half in [0usize, 17] {
        for i in 1..17 {
            b.add_net([half, half + i])?; // star from each macro
            b.add_net([half + i, half + (i % 16) + 1])?;
        }
    }
    // A 6-bit bus between the halves: one weighted net instead of six
    // parallel ones (same cut contribution, smaller netlist).
    b.add_weighted_net([5, 22], 6)?;
    let h = b.build()?;

    let cfg = MlConfig::clip();
    let balance = BipartBalance::new(&h, cfg.fm.balance_r);
    println!(
        "design: {} modules (total area {}), {} nets (total weight {})",
        h.num_modules(),
        h.total_area(),
        h.num_nets(),
        h.total_net_weight()
    );
    println!(
        "balance window: [{}, {}] (the macro area dominates the slack)",
        balance.lower(),
        balance.upper()
    );

    let mut rng = seeded_rng(11);
    let best = (0..10)
        .map(|_| ml_bipartition(&h, &cfg, &mut rng))
        .min_by_key(|(_, r)| r.cut)
        .expect("ten runs");
    let (p, r) = best;
    assert!(balance.is_partition_feasible(&p));
    println!(
        "best of 10 ML_C runs: weighted cut {} with side areas {:?}",
        r.cut,
        p.part_areas()
    );
    assert_eq!(r.cut, metrics::cut(&h, &p));

    // --- The same flow from netD text (the ACM/SIGDA format). ---
    let netd = "0\n8\n3\n6\n3\n\
a0 s O\na1 l I\na2 l I\n\
a3 s O\np1 l I\n\
a2 s O\na3 l I\np2 l B\n";
    let are = "a0 10\na3 10\n";
    let h2 = read_netd_with_areas(netd.as_bytes(), are.as_bytes(), 3)?;
    println!(
        "\nnetD import: {} modules, {} nets, total area {}",
        h2.num_modules(),
        h2.num_nets(),
        h2.total_area()
    );
    let mut rng = seeded_rng(3);
    let (p2, r2) = ml_bipartition(&h2, &MlConfig::default(), &mut rng);
    let names: Vec<String> = h2
        .modules()
        .filter(|v| p2.part(*v) == 0)
        .map(|v| module_name(v.index(), 3))
        .collect();
    println!("cut {} with side 0 = {:?}", r2.cut, names);
    Ok(())
}
