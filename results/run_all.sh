#!/bin/bash
set -x
cd "$(dirname "$0")/.."
B="cargo run --release -q -p mlpart-bench --bin"
$B table1 -- --suite all                       > results/table1.txt 2>&1
$B table2 -- --suite medium --runs 20          > results/table2.txt 2>&1
$B table3 -- --suite medium --runs 20          > results/table3.txt 2>&1
$B table4 -- --suite medium --runs 10          > results/table4.txt 2>&1
$B table5 -- --suite medium --runs 10          > results/table5.txt 2>&1
$B table6 -- --suite medium --runs 10          > results/table6.txt 2>&1
$B table7 -- --suite medium --runs 20          > results/table7.txt 2>&1
$B table8 -- --suite medium --runs 20          > results/table8.txt 2>&1
$B table9 -- --runs 5 --suite primary1,primary2,biomed,s13207,s15850,industry2,industry3,avqsmall,avqlarge > results/table9.txt 2>&1
$B fig4   -- --runs 10 --suite avqsmall,avqlarge > results/fig4.txt 2>&1
$B ablation -- --runs 5 --suite small          > results/ablation.txt 2>&1
$B table4 -- --runs 3 --suite golem3           > results/golem3.txt 2>&1
echo ALL_DONE
