#!/bin/bash
# Measures the cost of the observability layer in its three states:
#
#   off      — binary built without the `obs` feature (hooks compiled out)
#   disabled — built with `--features obs`, runtime gate off
#              (every hook reduces to one relaxed atomic load)
#   enabled  — same binary with --trace-out/--report-out, i.e. gate forced
#              on, full recording plus both exporters
#
# and verifies the partitioner's output (minus the timing parenthetical) is
# byte-identical in all three. Writes BENCH_obs_overhead.json at the repo
# root; see DESIGN.md §8.
set -euo pipefail
cd "$(dirname "$0")/.."

CIRCUITS=(syn-industry2 syn-s38584)
RUNS=8
SEED=1997
REPS=5
OUT=BENCH_obs_overhead.json
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "building (no obs feature)..." >&2
cargo build --release -q --bin mlpart
cp target/release/mlpart "$TMP/mlpart-off"
echo "building (--features obs)..." >&2
cargo build --release -q --features obs --bin mlpart
cp target/release/mlpart "$TMP/mlpart-obs"

# run CONFIG CIRCUIT -> prints wall seconds; stdout of the partitioner goes
# to $TMP/$config.$circuit.out (last rep wins; content is deterministic).
run() {
    local config=$1 circuit=$2 bin extra=()
    case $config in
        off)      bin="$TMP/mlpart-off" ;;
        disabled) bin="$TMP/mlpart-obs" ;;
        enabled)  bin="$TMP/mlpart-obs"
                  extra=(--trace-out "$TMP/t.json" --report-out "$TMP/r.json") ;;
    esac
    local t0 t1
    t0=$(date +%s.%N)
    "$bin" "$circuit" --algo ml-c --runs "$RUNS" --seed "$SEED" --threads 1 \
        "${extra[@]}" > "$TMP/$config.$circuit.out" 2> /dev/null
    t1=$(date +%s.%N)
    echo "$t0 $t1" | awk '{printf "%.6f", $2 - $1}'
}

cores=$(nproc 2>/dev/null || echo 1)
{
    printf '{"group":"obs_overhead","bench":"meta","cores":%s,"reps":%s,"runs":%s,"seed":%s,' \
        "$cores" "$REPS" "$RUNS" "$SEED"
    printf '"note":"wall-clock per config, min over reps; enabled = gate on + chrome-trace + run-report export; cut lines byte-identical across all three configs"}\n'
} > "$OUT"

for circuit in "${CIRCUITS[@]}"; do
    declare -A best
    for config in off disabled enabled; do
        best[$config]=""
        for _ in $(seq "$REPS"); do
            w=$(run "$config" "$circuit")
            echo "  $circuit/$config: ${w}s" >&2
            if [ -z "${best[$config]}" ] || awk "BEGIN{exit !($w < ${best[$config]})}"; then
                best[$config]=$w
            fi
        done
    done

    # The determinism guarantee: the reported cuts must not depend on
    # whether tracing is compiled in or switched on.
    for config in disabled enabled; do
        if ! diff <(sed -E 's/ \([^)]*\)$//' "$TMP/off.$circuit.out") \
                  <(sed -E 's/ \([^)]*\)$//' "$TMP/$config.$circuit.out") > /dev/null; then
            echo "FAIL: $circuit cut line differs between off and $config" >&2
            exit 1
        fi
    done
    cut_line=$(sed -E 's/ \([^)]*\)$//' "$TMP/off.$circuit.out")
    echo "  $circuit cuts identical across configs: $cut_line" >&2

    for config in off disabled enabled; do
        awk -v c="$circuit" -v k="$config" -v w="${best[$config]}" -v base="${best[off]}" \
            -v cut="$cut_line" 'BEGIN{
            printf "{\"group\":\"obs_overhead\",\"bench\":\"%s/%s\",\"wall_secs\":%s,", c, k, w
            printf "\"overhead_vs_off\":%.3f,\"cut_line\":\"%s\"}\n", w / base, cut
        }'
    done >> "$OUT"
done

echo "wrote $OUT" >&2
cat "$OUT"
