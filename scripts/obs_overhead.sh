#!/bin/bash
# Measures the cost of the observability layer in its three states by
# driving the in-process `obs_overhead` bench binary (crates/bench) twice:
#
#   off      — built without the `obs` feature (hooks compiled out)
#   disabled — built with `--features obs`, runtime gate off
#              (every hook reduces to one relaxed atomic load)
#   enabled  — gate forced on, full recording plus chrome-trace, JSONL,
#              folded-stack, and run-report serialization
#
# The binary measures in-process (no fork/exec or disk in the timed
# region) and already byte-compares the cut lines across the configs it
# runs; this wrapper additionally compares them across the two *builds*.
# Writes BENCH_obs_overhead.json at the repo root; see DESIGN.md §8.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS=8
SEED=1997
REPS=5
OUT=BENCH_obs_overhead.json

echo "building obs_overhead (no obs feature)..." >&2
cargo build --release -q -p mlpart-bench --bin obs_overhead
target/release/obs_overhead --runs "$RUNS" --seed "$SEED" --reps "$REPS" \
    --out "$OUT"

echo "building obs_overhead (--features obs)..." >&2
cargo build --release -q -p mlpart-bench --features obs --bin obs_overhead
target/release/obs_overhead --runs "$RUNS" --seed "$SEED" --reps "$REPS" \
    --out "$OUT" --append --no-meta

# Cross-build determinism: every config of one circuit must report the same
# cut line, whether the hooks were compiled in or not.
while read -r circ; do
    n=$(grep "\"bench\":\"$circ/" "$OUT" | grep -o '"cut_line":"[^"]*"' | sort -u | wc -l)
    if [ "$n" -ne 1 ]; then
        echo "FAIL: $circ cut lines differ across builds" >&2
        exit 1
    fi
done < <(grep -o '"bench":"[^"]*/' "$OUT" | sed 's/"bench":"//;s,/$,,' | sort -u)
echo "cut lines identical across off/obs builds" >&2
cat "$OUT"
