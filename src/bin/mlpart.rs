//! `mlpart` — command-line netlist partitioner.
//!
//! Reads an hMETIS `.hgr` netlist, runs the requested partitioning
//! algorithm for a number of independent starts, reports min/avg/std cut,
//! and optionally writes the best partition (one part id per line).
//!
//! ```text
//! mlpart <netlist.hgr> [--algo ml-c|ml-f|fm|clip|lsmc|two-phase]
//!                      [--k K] [--epsilon E] [--fixed cells.fix]
//!                      [--ratio R] [--threshold T]
//!                      [--runs N] [--seed S] [--threads P]
//!                      [--max-moves N] [--max-passes N] [--max-levels N]
//!                      [--deadline-secs F]
//!                      [--retries N] [--retry-degrade-passes N]
//!                      [--checkpoint ckpt.jsonl] [--resume]
//!                      [--output best.part] [--stats]
//!                      [--trace-out trace.json] [--report-out report.json]
//! ```
//!
//! `--k 4` uses multilevel quadrisection (only with the ml algorithms);
//! any other `--k` is served by recursive multilevel bisection. `--fixed`
//! pre-assigns modules from a `.fix` file (they never move), and
//! `--epsilon` sets the per-part balance window; either flag (or a
//! non-legacy `--k`) routes the run through the constraint-generic
//! drivers, whose pins are honored at every level of the hierarchy.
//! `--stats` prints the per-level refinement trajectory of the first run
//! (multilevel algorithms only). `--threads` spreads the independent starts
//! over worker threads; every start draws its seed from the same per-start
//! stream and the best cut ties break to the lowest start index, so the
//! reported cuts and the written partition are bit-identical at every
//! thread count (only the wall-clock changes).
//!
//! The `--max-*` flags bound each start's effort (see `mlpart --help` for
//! the exit-code contract); a start that panics is isolated and reported
//! while the surviving starts' results stay bit-identical to a run without
//! the failed starts.
//!
//! `--trace-out` writes a Chrome Trace Event file (loadable in Perfetto or
//! `chrome://tracing`) and `--report-out` writes a `mlpart-run-report-v3`
//! JSON document; both need a binary built with the `obs` feature and imply
//! tracing for the whole run. Trace *content* (everything except the
//! timestamp fields) is bit-identical across repeats and thread counts.
//!
//! `--retries` gives each start up to N deterministically reseeded
//! attempts before it counts as failed; `--checkpoint` records every
//! completed start to an atomically rewritten `mlpart-checkpoint-v1` file
//! and `--resume` skips the recorded starts, reproducing the
//! uninterrupted run's partition and stripped report byte-for-byte — even
//! after a mid-batch `SIGKILL`. A start whose solution leaves its balance
//! window (retry exhaustion, truncation, injected faults) is funneled
//! through a deterministic greedy repair pass; solutions that stay
//! infeasible are never written, and if none survives the run exits 2.
//! Every artifact (`--output`, `--trace-out`, `--report-out`,
//! `--folded-out`, checkpoints) is written via write-temp-then-rename, so
//! a crash never leaves a torn file.

use mlpart::checkpoint::{self, CheckpointConfig, CheckpointWriter, StartOutcome, StartValue};
use mlpart::cluster::MatchConfig;
use mlpart::core::{two_phase_fm_budgeted_in, two_phase_fm_constrained_budgeted_in};
use mlpart::fm::fm_partition_budgeted_in;
use mlpart::gen::by_name;
use mlpart::hypergraph::io::{read_fix, read_hgr, write_atomic_with, write_partition};
use mlpart::hypergraph::metrics::CutStats;
use mlpart::hypergraph::rng::MlRng;
use mlpart::lsmc::{lsmc_bipartition, LsmcConfig};
use mlpart::{
    ml_bipartition_budgeted_in, ml_bipartition_constrained_budgeted_in, ml_kway_budgeted_in,
    ml_kway_constrained_budgeted_in, preflight, preflight_constrained,
    recursive_ml_partition_budgeted_in, repair_to_feasible, run_supervised, Attempt, BipartBalance,
    Budget, BudgetMeter, Constraints, Engine, ExecError, FmConfig, Hypergraph, KwayBalance,
    LevelStats, MlConfig, MlKwayConfig, PartBounds, Partition, RefineWorkspace, RepairRecord,
    ResumeState, RetryPolicy, Sink, StartDone, Truncation, ATTEMPT_STRIDE, DEFAULT_EPSILON,
};
use std::collections::BTreeMap;
use std::io::Read;
use std::process::ExitCode;

#[derive(Debug, Clone, PartialEq)]
struct CliArgs {
    input: String,
    algo: String,
    k: u32,
    ratio: f64,
    threshold: usize,
    runs: usize,
    seed: u64,
    threads: usize,
    budget: Budget,
    output: Option<String>,
    stats: bool,
    trace_out: Option<String>,
    report_out: Option<String>,
    folded_out: Option<String>,
    /// Balance tolerance ε; `Some` switches to the constraint-generic
    /// drivers even without pins.
    epsilon: Option<f64>,
    /// Path to an hMETIS/Coloquinte `.fix` file of pre-assigned modules.
    fixed: Option<String>,
    /// Attempts per start (`--retries`), in `1..=ATTEMPT_STRIDE`.
    retries: u32,
    /// Pass budget for a start's final attempt after all earlier attempts
    /// failed (`--retry-degrade-passes`): graceful degradation.
    retry_degrade_passes: Option<u64>,
    /// Checkpoint file recording each completed start (`--checkpoint`).
    checkpoint: Option<String>,
    /// Skip the starts already recorded in the checkpoint (`--resume`).
    resume: bool,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            input: String::new(),
            algo: "ml-c".to_owned(),
            k: 2,
            ratio: 0.5,
            threshold: 35,
            runs: 10,
            seed: 1,
            threads: mlpart::exec::default_threads(),
            budget: Budget::UNLIMITED,
            output: None,
            stats: false,
            trace_out: None,
            report_out: None,
            folded_out: None,
            epsilon: None,
            fixed: None,
            retries: 1,
            retry_degrade_passes: None,
            checkpoint: None,
            resume: false,
        }
    }
}

impl CliArgs {
    /// `true` when the invocation needs the constraint-generic drivers:
    /// pinned modules, an explicit ε, or a part count the legacy dispatch
    /// does not serve. Legacy invocations keep their exact pre-constraint
    /// code path (and bit-identical results).
    fn is_constrained(&self) -> bool {
        self.fixed.is_some() || self.epsilon.is_some() || (self.k != 2 && self.k != 4)
    }
}

/// What one invocation asked for.
#[derive(Debug, Clone, PartialEq)]
enum CliCommand {
    /// Partition a netlist (boxed: the args dwarf the other variant).
    Run(Box<CliArgs>),
    /// Print the long help and exit 0.
    Help,
}

const USAGE: &str =
    "usage: mlpart <netlist.hgr | syn-NAME> [--algo ml-c|ml-f|fm|clip|lsmc|two-phase] \
[--k K] [--epsilon E] [--fixed cells.fix] [--ratio R] [--threshold T] \
[--runs N] [--seed S] [--threads P] \
[--max-moves N] [--max-passes N] [--max-levels N] [--deadline-secs F] \
[--retries N] [--retry-degrade-passes N] [--checkpoint ckpt.jsonl] [--resume] \
[--output best.part] [--stats] [--trace-out trace.json] [--report-out report.json] \
[--folded-out stacks.folded]\n\
run `mlpart --help` for details and the exit-code contract";

const HELP: &str = "mlpart — multilevel circuit partitioner \
(Alpert-Huang-Kahng, DAC 1997)

usage: mlpart <netlist.hgr | syn-NAME | -> [options]

input:
  netlist.hgr     hMETIS-format netlist file
  syn-NAME        a synthetic suite circuit (e.g. syn-balu)
  -               read the netlist from stdin

options:
  --algo A        ml-c | ml-f | fm | clip | lsmc | two-phase   [ml-c]
  --k K           number of parts, any K >= 2                  [2]
  --epsilon E     balance tolerance: each part stays within
                  (1 +/- E) x A(V)/K                           [0.2]
  --fixed FILE    hMETIS-style .fix file pre-assigning modules
                  (one line per module: part id, or -1 = free);
                  fixed modules never move
  --ratio R       matching ratio in (0, 1]                     [0.5]
  --threshold T   coarsening stop threshold                    [35]
  --runs N        independent starts                           [10]
  --seed S        base seed; start i uses child_seed(S, i)     [1]
  --threads P     worker threads (results identical for all P) [cores]
  --output PATH   write the best partition (one part id/line)
  --stats         print the first start's per-level trajectory
  --trace-out F   write a Chrome Trace Event file  (obs build)
  --report-out F  write a mlpart-run-report-v3 doc (obs build)
  --folded-out F  write folded stacks for flamegraph.pl/inferno
                  (obs build; self-time per stack, ns samples)

budgets (per start; cooperative, checked at pass/level boundaries):
  --max-moves N      stop refining after ~N attempted moves
  --max-passes N     stop refining after N passes
  --max-levels N     refine only the N coarsest uncoarsening levels
  --deadline-secs F  soft wall-clock deadline — NON-deterministic
                     (machine-dependent); the three limits above are
                     bit-reproducible at every thread count

A budget-truncated run still produces a valid, balance-feasible
partition (the best solution found so far, projected to the finest
level) — it is written to --output as usual.

supervision (crash-safe batches):
  --retries N     attempts per start before it counts as failed;
                  attempt a reseeds deterministically, so results
                  stay bit-identical at every thread count (1..=8) [1]
  --retry-degrade-passes N
                  run a start's *final* attempt under --max-passes N
                  (graceful degradation; needs --retries >= 2)
  --checkpoint F  record every completed start to F, a
                  mlpart-checkpoint-v1 JSONL file rewritten
                  atomically on each completion
  --resume        skip the starts recorded in --checkpoint's file;
                  the resumed run's partition and stripped report
                  are byte-identical to an uninterrupted run's
                  (--threads and output paths may change; all
                  normative flags must match the checkpoint)

Every start's output must land inside its balance window; a start
that comes back outside it (after faults, retry exhaustion, or
truncation) is repaired by a deterministic greedy pass and reported
under `repairs`. A start that stays infeasible is excluded, and all
artifacts are written atomically (write-temp-then-rename).

exit codes:
  0  success
  1  execution failure (every start panicked, or an output or
     checkpoint path could not be written)
  2  invalid input: bad flags, unreadable or malformed netlist,
     an infeasible problem instance (preflight), a malformed
     MLPART_FAULTS spec, a corrupt or mismatched --resume
     checkpoint, or no balance-feasible partition survived
  3  budget truncated: at least one start hit a --max-* limit or
     the deadline; the partial result (cuts, --output partition)
     is still produced";

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliCommand, String> {
    let mut out = CliArgs::default();
    let mut it = args.into_iter().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--algo" => out.algo = value("--algo")?,
            "--k" => {
                out.k = value("--k")?.parse().map_err(|_| "invalid --k")?;
                if out.k < 2 {
                    return Err("--k must be at least 2".to_owned());
                }
            }
            "--epsilon" => {
                let eps: f64 = value("--epsilon")?
                    .parse()
                    .map_err(|_| "invalid --epsilon")?;
                if !(eps > 0.0 && eps.is_finite()) {
                    return Err("--epsilon must be positive".to_owned());
                }
                out.epsilon = Some(eps);
            }
            "--fixed" => out.fixed = Some(value("--fixed")?),
            "--ratio" => {
                out.ratio = value("--ratio")?.parse().map_err(|_| "invalid --ratio")?;
                if !(out.ratio > 0.0 && out.ratio <= 1.0) {
                    return Err("--ratio must be in (0, 1]".to_owned());
                }
            }
            "--threshold" => {
                out.threshold = value("--threshold")?
                    .parse()
                    .map_err(|_| "invalid --threshold")?;
            }
            "--runs" => {
                out.runs = value("--runs")?.parse().map_err(|_| "invalid --runs")?;
                if out.runs == 0 {
                    return Err("--runs must be positive".to_owned());
                }
            }
            "--seed" => out.seed = value("--seed")?.parse().map_err(|_| "invalid --seed")?,
            "--threads" => {
                out.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads")?;
                if out.threads == 0 {
                    return Err("--threads must be positive".to_owned());
                }
            }
            "--max-moves" => {
                out.budget.max_moves = Some(
                    value("--max-moves")?
                        .parse()
                        .map_err(|_| "invalid --max-moves")?,
                );
            }
            "--max-passes" => {
                out.budget.max_passes = Some(
                    value("--max-passes")?
                        .parse()
                        .map_err(|_| "invalid --max-passes")?,
                );
            }
            "--max-levels" => {
                out.budget.max_levels = Some(
                    value("--max-levels")?
                        .parse()
                        .map_err(|_| "invalid --max-levels")?,
                );
            }
            "--deadline-secs" => {
                let secs: f64 = value("--deadline-secs")?
                    .parse()
                    .map_err(|_| "invalid --deadline-secs")?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--deadline-secs must be positive".to_owned());
                }
                out.budget.soft_deadline_secs = Some(secs);
            }
            "--retries" => {
                out.retries = value("--retries")?
                    .parse()
                    .map_err(|_| "invalid --retries")?;
                if out.retries == 0 || u64::from(out.retries) > ATTEMPT_STRIDE {
                    return Err(format!("--retries must be in 1..={ATTEMPT_STRIDE}"));
                }
            }
            "--retry-degrade-passes" => {
                out.retry_degrade_passes = Some(
                    value("--retry-degrade-passes")?
                        .parse()
                        .map_err(|_| "invalid --retry-degrade-passes")?,
                );
            }
            "--checkpoint" => out.checkpoint = Some(value("--checkpoint")?),
            "--resume" => out.resume = true,
            "--output" => out.output = Some(value("--output")?),
            "--stats" => out.stats = true,
            "--trace-out" => out.trace_out = Some(value("--trace-out")?),
            "--report-out" => out.report_out = Some(value("--report-out")?),
            "--folded-out" => out.folded_out = Some(value("--folded-out")?),
            "--help" | "-h" => return Ok(CliCommand::Help),
            other if out.input.is_empty() && !other.starts_with('-') => {
                out.input = other.to_owned();
            }
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    if out.input.is_empty() {
        return Err(USAGE.to_owned());
    }
    if out.algo == "lsmc" && !out.budget.is_unlimited() {
        return Err("--max-*/--deadline-secs are not supported with --algo lsmc".to_owned());
    }
    if out.retry_degrade_passes.is_some() && out.retries < 2 {
        return Err("--retry-degrade-passes needs --retries >= 2".to_owned());
    }
    if out.algo == "lsmc" && out.retry_degrade_passes.is_some() {
        return Err("--retry-degrade-passes is not supported with --algo lsmc".to_owned());
    }
    if out.resume && out.checkpoint.is_none() {
        return Err("--resume needs --checkpoint".to_owned());
    }
    if out.is_constrained() {
        match out.algo.as_str() {
            "ml-c" | "ml-f" => {}
            "two-phase" if out.k == 2 => {}
            "two-phase" => {
                return Err("--algo two-phase is 2-way only; drop --k or use ml-c/ml-f".to_owned());
            }
            other => {
                return Err(format!(
                    "--fixed/--epsilon/general --k need a constraint-aware algorithm \
                     (ml-c, ml-f, or two-phase), not {other:?}"
                ));
            }
        }
    }
    Ok(CliCommand::Run(Box::new(out)))
}

fn load_netlist(input: &str) -> Result<Hypergraph, String> {
    // Synthetic suite circuits can be named directly (prefix `syn-`).
    if let Some(circuit) = input.strip_prefix("syn-").and_then(by_name) {
        return Ok(circuit.generate(1997));
    }
    if input == "-" {
        let mut text = Vec::new();
        std::io::stdin()
            .read_to_end(&mut text)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        return read_hgr(text.as_slice()).map_err(|e| format!("cannot parse netlist: {e}"));
    }
    let file = std::fs::File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    read_hgr(file).map_err(|e| format!("cannot parse {input}: {e}"))
}

/// One engine invocation's raw outcome: the partition, its cut, the
/// per-level refinement trajectory (multilevel algorithms only), and the
/// budget-truncation record when a `--max-*` limit fired.
type StartResult = (Partition, u64, Vec<LevelStats>, Option<Truncation>);

fn run_engine(
    h: &Hypergraph,
    args: &CliArgs,
    constraints: Option<&Constraints>,
    budget: &Budget,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> Result<StartResult, String> {
    let fm_cfg = |engine| FmConfig {
        engine,
        ..FmConfig::default()
    };
    let ml_cfg = |engine| MlConfig {
        matching_ratio: args.ratio,
        coarsen_threshold: args.threshold,
        fm: fm_cfg(engine),
        ..MlConfig::default()
    };
    // Each start spends against its own meter, so budgets cannot couple
    // starts and results stay thread-count-invariant.
    let mut meter = BudgetMeter::new(budget);
    if let Some(c) = constraints {
        // Constraint-generic dispatch: pins, explicit ε, or general k.
        // Parsing already restricted the algorithms to ml-c/ml-f/two-phase.
        if args.algo == "two-phase" {
            let (p, r) = two_phase_fm_constrained_budgeted_in(
                h,
                &fm_cfg(Engine::Fm),
                &MatchConfig::with_ratio(args.ratio),
                c,
                rng,
                ws,
                &mut meter,
            );
            return Ok((p, r.cut, Vec::new(), r.truncation));
        }
        let engine = if args.algo == "ml-c" {
            Engine::Clip
        } else {
            Engine::Fm
        };
        return Ok(match c.k() {
            2 => {
                let cfg = ml_cfg(engine).with_epsilon(c.epsilon());
                let (p, r) = ml_bipartition_constrained_budgeted_in(
                    h,
                    &cfg,
                    c.fixed(),
                    h.total_area() / 2,
                    c.epsilon(),
                    rng,
                    ws,
                    &mut meter,
                );
                (p, r.cut, r.level_stats, r.truncation)
            }
            4 => {
                let cfg = MlKwayConfig {
                    matching_ratio: args.ratio,
                    coarsen_threshold: args.threshold.max(100),
                    ..MlKwayConfig::default()
                };
                let (p, r) = ml_kway_constrained_budgeted_in(h, &cfg, c, rng, ws, &mut meter);
                (p, r.cut, r.level_stats, r.truncation)
            }
            k => {
                let cfg = ml_cfg(engine).with_k(k).with_epsilon(c.epsilon());
                let (p, r) = recursive_ml_partition_budgeted_in(h, &cfg, c, rng, ws, &mut meter);
                (p, r.cut, Vec::new(), r.truncation)
            }
        });
    }
    if args.k == 4 {
        let cfg = MlKwayConfig {
            matching_ratio: args.ratio,
            coarsen_threshold: args.threshold.max(100),
            ..MlKwayConfig::default()
        };
        if !args.algo.starts_with("ml") {
            return Err("--k 4 requires --algo ml-c or ml-f".to_owned());
        }
        let (p, r) = ml_kway_budgeted_in(h, &cfg, &[], rng, ws, &mut meter);
        return Ok((p, r.cut, r.level_stats, r.truncation));
    }
    Ok(match args.algo.as_str() {
        "ml-c" => {
            let (p, r) = ml_bipartition_budgeted_in(h, &ml_cfg(Engine::Clip), rng, ws, &mut meter);
            (p, r.cut, r.level_stats, r.truncation)
        }
        "ml-f" => {
            let (p, r) = ml_bipartition_budgeted_in(h, &ml_cfg(Engine::Fm), rng, ws, &mut meter);
            (p, r.cut, r.level_stats, r.truncation)
        }
        "fm" => {
            let (p, r) =
                fm_partition_budgeted_in(h, None, &fm_cfg(Engine::Fm), rng, ws, &mut meter);
            (p, r.cut, Vec::new(), meter.truncation())
        }
        "clip" => {
            let (p, r) =
                fm_partition_budgeted_in(h, None, &fm_cfg(Engine::Clip), rng, ws, &mut meter);
            (p, r.cut, Vec::new(), meter.truncation())
        }
        "lsmc" => {
            let cfg = LsmcConfig {
                descents: 20,
                ..LsmcConfig::default()
            };
            let (p, r) = lsmc_bipartition(h, &cfg, rng);
            (p, r.cut, Vec::new(), None)
        }
        "two-phase" => {
            let (p, r) = two_phase_fm_budgeted_in(
                h,
                &fm_cfg(Engine::Fm),
                &MatchConfig::with_ratio(args.ratio),
                rng,
                ws,
                &mut meter,
            );
            (p, r.cut, Vec::new(), r.truncation)
        }
        other => return Err(format!("unknown algorithm {other:?}\n{USAGE}")),
    })
}

/// The balance window every emitted partition must satisfy: the constraint
/// window when constraints are in play, otherwise the legacy window the
/// preflight check already vouched for.
fn balance_bounds(h: &Hypergraph, args: &CliArgs, constraints: Option<&Constraints>) -> PartBounds {
    match constraints {
        Some(c) => c.bounds(h),
        None if args.k == 4 => {
            PartBounds::from_kway(&KwayBalance::new(h, 4, FmConfig::default().balance_r))
        }
        None => PartBounds::from_bipart(&BipartBalance::new(h, FmConfig::default().balance_r)),
    }
}

/// One supervised start: runs the engine under the attempt's budget (the
/// caller's, or the degraded final-attempt budget), then gates the raw
/// solution through the balance window — repairing it in place when a
/// fault, retry, or truncation left it outside. `feasible: false` in the
/// returned repair record marks a solution the driver must discard.
#[allow(clippy::too_many_arguments)]
fn run_once(
    h: &Hypergraph,
    args: &CliArgs,
    constraints: Option<&Constraints>,
    bounds: &PartBounds,
    fixed_mask: &[bool],
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    attempt: Attempt,
) -> StartValue {
    let budget = attempt.budget.copied().unwrap_or(args.budget);
    let (mut partition, mut cut, level_stats, truncation) =
        run_engine(h, args, constraints, &budget, rng, ws)?;
    #[cfg(feature = "fault")]
    if mlpart::fault::should_unbalance("start", attempt.start as u64) {
        // Deterministic imbalance injection: overfill part 0 with free
        // modules (id order) so the repair gate has real work to do.
        for v in (0..h.num_modules()).map(mlpart::hypergraph::ModuleId::new) {
            if partition.part_area(0) > bounds.hi(0) {
                break;
            }
            if !fixed_mask.get(v.index()).copied().unwrap_or(false) && partition.part(v) != 0 {
                partition.move_module(h, v, 0);
            }
        }
        cut = mlpart::hypergraph::metrics::cut(h, &partition);
    }
    let repair = if bounds.is_partition_feasible(&partition) {
        None
    } else {
        let rec = repair_to_feasible(h, &mut partition, bounds, fixed_mask);
        cut = rec.cut_after;
        Some(rec)
    };
    Ok(StartOutcome {
        partition,
        cut,
        level_stats,
        truncation,
        repair,
    })
}

/// Renders `--stats` from the captured trace: the same per-level trajectory
/// as [`print_level_stats`], reconstructed from span/counter events instead
/// of the `LevelStats` side channel (the trace is the source of truth when
/// tracing is on). Only the first start is shown, matching the legacy path.
#[cfg(feature = "obs")]
fn print_level_rows(trace: &mlpart::obs::Trace) {
    let rows: Vec<_> = mlpart::obs::report::level_rows(trace)
        .into_iter()
        .filter(|r| r.start == 0)
        .collect();
    if rows.is_empty() {
        eprintln!("per-level stats: none (flat algorithm)");
        return;
    }
    eprintln!("level  modules  cut_before  cut_after  kept/attempted  rebalance  passes");
    for r in &rows {
        eprintln!(
            "{:>5}  {:>7}  {:>10}  {:>9}  {:>6}/{:<7}  {:>9}  {:>6}",
            r.level,
            r.modules,
            r.cut_before,
            r.cut_after,
            r.kept,
            r.attempted,
            r.rebalance_moves,
            r.passes,
        );
    }
}

/// Writes `content` to `path` atomically (write-temp-then-rename), mapping
/// failures to a printable message.
#[cfg(feature = "obs")]
fn write_text(path: &str, content: &str) -> Result<(), String> {
    mlpart::hypergraph::io::write_atomic(path, content.as_bytes())
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// Prints the per-level refinement trajectory collected by a multilevel run.
fn print_level_stats(stats: &[LevelStats]) {
    if stats.is_empty() {
        eprintln!("per-level stats: none (flat algorithm)");
        return;
    }
    eprintln!("level  modules  cut_before  cut_after  kept/attempted  rebalance  passes  fill_ms");
    for s in stats {
        eprintln!(
            "{:>5}  {:>7}  {:>10}  {:>9}  {:>6}/{:<7}  {:>9}  {:>6}  {:>7.3}",
            s.level,
            s.modules,
            s.cut_before,
            s.cut_after,
            s.kept_moves,
            s.attempted_moves,
            s.rebalance_moves,
            s.passes,
            s.fill_time_ns as f64 / 1e6,
        );
    }
}

/// Exit-code contract (documented in `--help`): success / failure /
/// invalid-input / budget-truncated.
const EXIT_FAILURE: u8 = 1;
const EXIT_INVALID_INPUT: u8 = 2;
const EXIT_TRUNCATED: u8 = 3;

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(CliCommand::Help) => {
            println!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Ok(CliCommand::Run(a)) => *a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_INVALID_INPUT);
        }
    };
    // Fault plans come from the environment, not argv, but a malformed one
    // is the same class of mistake: reject it eagerly, before any work.
    #[cfg(feature = "fault")]
    if let Err(e) = mlpart::fault::validate_env() {
        eprintln!("invalid MLPART_FAULTS: {e}");
        return ExitCode::from(EXIT_INVALID_INPUT);
    }
    let h = match load_netlist(&args.input) {
        Ok(h) => h,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_INVALID_INPUT);
        }
    };
    // Constraint assembly: `.fix` pins and the ε window are invalid-input
    // concerns, resolved before any start runs.
    let constraints = if args.is_constrained() {
        let fixed = match &args.fixed {
            Some(path) => {
                let file = match std::fs::File::open(path) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("cannot open {path}: {e}");
                        return ExitCode::from(EXIT_INVALID_INPUT);
                    }
                };
                match read_fix(file, h.num_modules(), args.k) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("cannot parse {path}: {e}");
                        return ExitCode::from(EXIT_INVALID_INPUT);
                    }
                }
            }
            None => Vec::new(),
        };
        match Constraints::new(args.k, args.epsilon.unwrap_or(DEFAULT_EPSILON), fixed) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("invalid constraints: {e}");
                return ExitCode::from(EXIT_INVALID_INPUT);
            }
        }
    } else {
        None
    };
    // Pre-flight: reject infeasible problem instances with a typed message
    // before any start burns cycles on them.
    let feasible = match &constraints {
        Some(c) => preflight_constrained(&h, c),
        None => preflight(&h, args.k, FmConfig::default().balance_r),
    };
    if let Err(e) = feasible {
        eprintln!("infeasible input: {e}");
        return ExitCode::from(EXIT_INVALID_INPUT);
    }
    eprintln!(
        "{}: {} modules, {} nets, {} pins",
        args.input,
        h.num_modules(),
        h.num_nets(),
        h.num_pins()
    );
    let tracing =
        args.trace_out.is_some() || args.report_out.is_some() || args.folded_out.is_some();
    #[cfg(not(feature = "obs"))]
    if tracing {
        eprintln!(
            "--trace-out/--report-out/--folded-out need a binary built with the `obs` \
             feature (cargo build --release --features obs)"
        );
        return ExitCode::from(EXIT_INVALID_INPUT);
    }
    #[cfg(feature = "obs")]
    if tracing {
        mlpart::obs::force_enabled(true);
    }
    // Supervision setup: the balance window and fixed mask gate every
    // start's output, the retry policy governs reseeded attempts, and the
    // checkpoint config pins this invocation's identity on disk.
    let bounds = balance_bounds(&h, &args, constraints.as_ref());
    let fixed_mask = constraints
        .as_ref()
        .map(|c| c.fixed_mask(h.num_modules()))
        .unwrap_or_default();
    let policy = RetryPolicy {
        max_attempts: args.retries,
        degraded_final: args.retry_degrade_passes.map(|n| Budget {
            max_passes: Some(n),
            ..args.budget
        }),
    };
    let ckpt_config = CheckpointConfig {
        circuit: args.input.clone(),
        algo: args.algo.clone(),
        k: args.k,
        epsilon: args.epsilon,
        fixed: args.fixed.clone(),
        ratio: args.ratio,
        threshold: args.threshold,
        runs: args.runs,
        seed: args.seed,
        retries: args.retries,
        degraded_passes: args.retry_degrade_passes,
        budget: args.budget,
        traced: tracing,
    };
    let mut resume_state: ResumeState<StartValue> = ResumeState::default();
    let mut restored_lines = BTreeMap::new();
    if args.resume {
        if let Some(path) = &args.checkpoint {
            match std::fs::read_to_string(path) {
                Ok(text) => match checkpoint::load(&text, &ckpt_config, &h) {
                    Ok(loaded) => {
                        eprintln!(
                            "resuming from {path}: {} of {} starts already done",
                            loaded.resume.done.len(),
                            args.runs
                        );
                        resume_state = loaded.resume;
                        restored_lines = loaded.lines;
                    }
                    Err(e) => {
                        eprintln!("cannot resume from {path}: {e}");
                        return ExitCode::from(EXIT_INVALID_INPUT);
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    eprintln!("note: checkpoint {path} not found; starting fresh");
                }
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::from(EXIT_INVALID_INPUT);
                }
            }
        }
    }
    let writer = match &args.checkpoint {
        Some(path) => {
            match CheckpointWriter::create(path, ckpt_config.header_line(), restored_lines) {
                Ok(w) => Some(w),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(EXIT_FAILURE);
                }
            }
        }
        None => None,
    };
    // The sink runs on whichever worker finished a start; the writer
    // serializes and latches I/O errors internally.
    let sink_fn = |done: &StartDone<StartValue>| {
        if let Some(w) = &writer {
            w.record(done);
        }
    };
    let sink: Sink<'_, StartValue> = if writer.is_some() {
        Some(&sink_fn)
    } else {
        None
    };
    // Every start is an independent seeded job; the executor spreads them
    // over `--threads` workers, isolates per-attempt panics, retries under
    // the policy, and returns the outcomes in start order, so everything
    // below this line is oblivious to the thread count. With tracing on,
    // the whole batch is captured under one `run` span and the per-start
    // streams arrive merged in start order — restored starts splice their
    // recorded streams back in, keeping resumed trace content identical.
    let run_batch = || {
        #[cfg(feature = "obs")]
        let _obs_run = mlpart::obs::span(
            "run",
            &[
                ("runs", args.runs.into()),
                ("seed", args.seed.into()),
                ("k", args.k.into()),
            ],
        );
        run_supervised(
            args.runs,
            args.seed,
            args.threads,
            &policy,
            resume_state,
            sink,
            &|rng, ws, attempt| {
                run_once(
                    &h,
                    &args,
                    constraints.as_ref(),
                    &bounds,
                    &fixed_mask,
                    rng,
                    ws,
                    attempt,
                )
            },
        )
    };
    #[cfg(feature = "obs")]
    let (batch_result, trace) = mlpart::obs::capture(run_batch);
    #[cfg(not(feature = "obs"))]
    let batch_result = run_batch();
    let (batch, timing) = match batch_result {
        Ok(ok) => ok,
        Err(e @ ExecError::AllStartsFailed { .. }) => {
            if let ExecError::AllStartsFailed { failures } = &e {
                for f in failures {
                    eprintln!("{f}");
                }
            }
            eprintln!("error: every start failed; no result produced");
            return ExitCode::from(EXIT_FAILURE);
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_FAILURE);
        }
    };
    for f in &batch.failures {
        eprintln!("warning: {f} (start excluded from results)");
    }
    for r in &batch.retries {
        eprintln!("note: {r}");
    }
    let mut best: Option<(u64, Partition)> = None;
    let mut cuts = Vec::with_capacity(batch.survivors.len());
    let mut truncations: Vec<(usize, Truncation)> = Vec::new();
    let mut repairs: Vec<(usize, RepairRecord)> = Vec::new();
    #[cfg(feature = "obs")]
    let print_legacy_stats = args.stats && trace.is_none();
    #[cfg(not(feature = "obs"))]
    let print_legacy_stats = args.stats;
    for (i, outcome) in batch.survivors {
        match outcome {
            Ok(v) => {
                if print_legacy_stats && i == 0 {
                    print_level_stats(&v.level_stats);
                }
                if let Some(t) = v.truncation {
                    truncations.push((i, t));
                }
                if let Some(r) = v.repair {
                    repairs.push((i, r));
                    if !r.feasible {
                        // Repair could not reach the balance window: the
                        // solution is diagnostic material, never output.
                        eprintln!(
                            "warning: start {i} stayed balance-infeasible after repair \
                             (excluded from results)"
                        );
                        continue;
                    }
                    eprintln!(
                        "note: start {i} repaired to feasible in {} moves (cut {} -> {})",
                        r.moves, r.cut_before, r.cut_after
                    );
                }
                cuts.push(v.cut);
                if best.as_ref().is_none_or(|(c, _)| v.cut < *c) {
                    best = Some((v.cut, v.partition));
                }
            }
            Err(msg) => {
                // A configuration error (unknown algorithm, bad k/algo
                // combination) — every start reports the same one.
                eprintln!("{msg}");
                return ExitCode::from(EXIT_INVALID_INPUT);
            }
        }
    }
    for (i, t) in &truncations {
        eprintln!(
            "note: start {i} budget-truncated ({} limit at the {} checkpoint)",
            t.limit.name(),
            t.site
        );
    }
    #[cfg(feature = "obs")]
    if let Some(trace) = trace {
        if args.stats {
            print_level_rows(&trace);
        }
        if let Some(path) = &args.trace_out {
            if let Err(msg) = write_text(path, &mlpart::obs::to_chrome_trace(&trace)) {
                eprintln!("{msg}");
                return ExitCode::from(EXIT_FAILURE);
            }
            eprintln!("chrome trace written to {path}");
        }
        if let Some(path) = &args.folded_out {
            if let Err(msg) = write_text(path, &mlpart::obs::to_folded(&trace)) {
                eprintln!("{msg}");
                return ExitCode::from(EXIT_FAILURE);
            }
            eprintln!("folded stacks written to {path}");
        }
        if let Some(path) = &args.report_out {
            let report = mlpart::obs::report::RunReport {
                meta: vec![
                    (
                        "circuit",
                        mlpart::obs::V::S(Box::leak(args.input.clone().into_boxed_str())),
                    ),
                    (
                        "algo",
                        mlpart::obs::V::S(Box::leak(args.algo.clone().into_boxed_str())),
                    ),
                    ("k", args.k.into()),
                    ("ratio", args.ratio.into()),
                    ("threshold", args.threshold.into()),
                    ("runs", args.runs.into()),
                    ("seed", args.seed.into()),
                    ("threads", args.threads.into()),
                ],
                cuts: cuts.clone(),
                failures: batch
                    .failures
                    .iter()
                    .map(|f| mlpart::obs::report::FailureRecord {
                        start: f.start as u64,
                        phase: f.phase.clone(),
                        message: f.message.clone(),
                    })
                    .collect(),
                truncations: truncations
                    .iter()
                    .map(|(i, t)| mlpart::obs::report::TruncationRecord {
                        start: *i as u64,
                        limit: t.limit.name(),
                        site: t.site,
                        level: t.level.map(u64::from),
                        pass: t.pass.map(u64::from),
                    })
                    .collect(),
                retries: batch
                    .retries
                    .iter()
                    .map(|r| mlpart::obs::report::RetryReportRecord {
                        start: r.start as u64,
                        attempt: u64::from(r.attempt),
                        phase: r.phase.clone(),
                        message: r.message.clone(),
                    })
                    .collect(),
                repairs: repairs
                    .iter()
                    .map(|(i, r)| mlpart::obs::report::RepairReportRecord {
                        start: *i as u64,
                        moves: r.moves,
                        cut_before: r.cut_before,
                        cut_after: r.cut_after,
                        feasible: r.feasible,
                    })
                    .collect(),
                wall_secs: timing.wall_secs,
                cpu_secs: timing.cpu_secs,
                trace,
            };
            if let Err(msg) = write_text(path, &report.to_json()) {
                eprintln!("{msg}");
                return ExitCode::from(EXIT_FAILURE);
            }
            eprintln!("run report written to {path}");
        }
    }
    if cuts.is_empty() {
        // Every surviving start stayed outside its balance window even
        // after repair: there is no feasible partition to report or write.
        // The trace/report artifacts above are still produced (diagnostic
        // material), but --output is not.
        eprintln!("error: no balance-feasible partition produced");
        return ExitCode::from(EXIT_INVALID_INPUT);
    }
    let stats = CutStats::from_samples(&cuts);
    println!(
        "{} x{} runs: min {} avg {:.1} std {:.1} ({:.2}s wall, {:.2}s cpu, {} threads)",
        args.algo,
        cuts.len(),
        stats.min,
        stats.avg,
        stats.std,
        timing.wall_secs,
        timing.cpu_secs,
        args.threads.min(args.runs),
    );
    if let Some(path) = &args.output {
        let Some((_, p)) = best else {
            // Unreachable: cuts and best fill together — but a typed exit
            // beats a panic if that ever changes.
            eprintln!("no partition to write");
            return ExitCode::from(EXIT_FAILURE);
        };
        match write_atomic_with(path, |w| write_partition(&p, w)) {
            Ok(()) => eprintln!("best partition written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(EXIT_FAILURE);
            }
        }
    }
    if let Some(w) = &writer {
        // Latched checkpoint I/O errors surface once, after the artifacts:
        // the run's results stand, but scripts must not trust the file.
        if let Some(e) = w.error() {
            eprintln!("{e}");
            return ExitCode::from(EXIT_FAILURE);
        }
    }
    if !truncations.is_empty() {
        // Partial-but-valid result: everything above ran (cuts printed,
        // partition written); the code tells scripts the budget fired.
        return ExitCode::from(EXIT_TRUNCATED);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        std::iter::once("mlpart".to_owned())
            .chain(s.split_whitespace().map(str::to_owned))
            .collect()
    }

    fn parse_run(s: &str) -> Result<CliArgs, String> {
        match parse_args(argv(s))? {
            CliCommand::Run(a) => Ok(*a),
            CliCommand::Help => Err("unexpected help".to_owned()),
        }
    }

    #[test]
    fn parses_full_command_line() {
        let a = parse_run(
            "design.hgr --algo ml-f --k 4 --ratio 0.33 --runs 3 --seed 9 --threads 2 \
             --output out.part --stats",
        )
        .expect("parses");
        assert_eq!(a.input, "design.hgr");
        assert_eq!(a.algo, "ml-f");
        assert_eq!(a.k, 4);
        assert_eq!(a.ratio, 0.33);
        assert_eq!(a.runs, 3);
        assert_eq!(a.threads, 2);
        assert_eq!(a.output.as_deref(), Some("out.part"));
        assert!(a.stats);
        assert!(a.budget.is_unlimited());
    }

    #[test]
    fn parses_budget_flags() {
        let a = parse_run("x.hgr --max-moves 500 --max-passes 3 --max-levels 2").expect("parses");
        assert_eq!(a.budget.max_moves, Some(500));
        assert_eq!(a.budget.max_passes, Some(3));
        assert_eq!(a.budget.max_levels, Some(2));
        assert_eq!(a.budget.soft_deadline_secs, None);
        let a = parse_run("x.hgr --deadline-secs 1.5").expect("parses");
        assert_eq!(a.budget.soft_deadline_secs, Some(1.5));
    }

    #[test]
    fn help_is_a_command_not_an_error() {
        assert_eq!(parse_args(argv("--help")), Ok(CliCommand::Help));
        assert_eq!(parse_args(argv("x.hgr -h")), Ok(CliCommand::Help));
        // The long help documents the exit-code contract.
        for needle in [
            "exit codes:",
            "0  success",
            "2  invalid input",
            "3  budget truncated",
        ] {
            assert!(HELP.contains(needle), "--help must document {needle:?}");
        }
    }

    #[test]
    fn parses_constraint_flags() {
        let a = parse_run("x.hgr --k 8 --epsilon 0.05 --fixed cells.fix").expect("parses");
        assert_eq!(a.k, 8);
        assert_eq!(a.epsilon, Some(0.05));
        assert_eq!(a.fixed.as_deref(), Some("cells.fix"));
        assert!(a.is_constrained());
        // General k parses for any constraint-aware algorithm.
        assert!(parse_run("x.hgr --k 3").is_ok());
        assert!(parse_run("x.hgr --algo ml-f --k 7").is_ok());
        assert!(parse_run("x.hgr --algo two-phase --fixed c.fix").is_ok());
        // Legacy invocations stay unconstrained.
        assert!(!parse_run("x.hgr --k 2").expect("parses").is_constrained());
        assert!(!parse_run("x.hgr --k 4").expect("parses").is_constrained());
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(argv("")).is_err());
        assert!(parse_args(argv("x.hgr --k 1")).is_err());
        assert!(parse_args(argv("x.hgr --k x")).is_err());
        assert!(parse_args(argv("x.hgr --epsilon 0")).is_err());
        assert!(parse_args(argv("x.hgr --epsilon nan")).is_err());
        assert!(parse_args(argv("x.hgr --fixed")).is_err());
        assert!(parse_args(argv("x.hgr --algo fm --k 3")).is_err());
        assert!(parse_args(argv("x.hgr --algo lsmc --fixed c.fix")).is_err());
        assert!(parse_args(argv("x.hgr --algo two-phase --k 3")).is_err());
        assert!(parse_args(argv("x.hgr --ratio 0")).is_err());
        assert!(parse_args(argv("x.hgr --runs 0")).is_err());
        assert!(parse_args(argv("x.hgr --threads 0")).is_err());
        assert!(parse_args(argv("x.hgr --threads x")).is_err());
        assert!(parse_args(argv("x.hgr --bogus 1")).is_err());
        assert!(parse_args(argv("x.hgr --max-moves")).is_err());
        assert!(parse_args(argv("x.hgr --max-passes x")).is_err());
        assert!(parse_args(argv("x.hgr --deadline-secs -1")).is_err());
        assert!(parse_args(argv("x.hgr --algo lsmc --max-passes 1")).is_err());
    }

    #[test]
    fn synthetic_names_load() {
        let h = load_netlist("syn-balu").expect("suite circuit");
        assert_eq!(h.num_modules(), 801);
        assert!(load_netlist("syn-nonexistent").is_err());
    }

    #[test]
    fn run_engine_covers_all_algorithms() {
        let h = load_netlist("syn-balu").expect("suite circuit");
        let mut args = CliArgs {
            input: "syn-balu".to_owned(),
            runs: 1,
            ..CliArgs::default()
        };
        let mut ws = RefineWorkspace::new();
        for algo in ["ml-c", "ml-f", "fm", "clip", "lsmc", "two-phase"] {
            args.algo = algo.to_owned();
            let mut rng = mlpart::hypergraph::rng::seeded_rng(1);
            let (p, cut, level_stats, truncation) =
                run_engine(&h, &args, None, &args.budget, &mut rng, &mut ws).expect(algo);
            assert!(p.validate(&h), "{algo}");
            assert!(cut > 0, "{algo}");
            assert!(truncation.is_none(), "{algo}: unlimited run truncated");
            if algo.starts_with("ml") {
                assert!(!level_stats.is_empty(), "{algo} should report level stats");
            }
        }
        let mut rng = mlpart::hypergraph::rng::seeded_rng(1);
        args.algo = "unknown".to_owned();
        assert!(run_engine(&h, &args, None, &args.budget, &mut rng, &mut ws).is_err());
        // Quadrisection path.
        args.algo = "ml-f".to_owned();
        args.k = 4;
        let (p, _, level_stats, _) =
            run_engine(&h, &args, None, &args.budget, &mut rng, &mut ws).expect("quadrisection");
        assert_eq!(p.k(), 4);
        assert!(!level_stats.is_empty(), "quadrisection reports level stats");
        args.algo = "fm".to_owned();
        assert!(
            run_engine(&h, &args, None, &args.budget, &mut rng, &mut ws).is_err(),
            "flat fm cannot do k=4 here"
        );
    }

    #[test]
    fn run_engine_covers_constrained_dispatch() {
        use mlpart::hypergraph::ModuleId;
        let h = load_netlist("syn-balu").expect("suite circuit");
        let mut ws = RefineWorkspace::new();
        let pins = [(ModuleId::new(0), 1u32), (ModuleId::new(5), 0u32)];
        // k = 2 (constrained ML), 4 (constrained k-way), 3 (recursive).
        for (algo, k) in [("ml-c", 2u32), ("ml-f", 4), ("ml-c", 3), ("two-phase", 2)] {
            let pins: Vec<_> = pins.iter().filter(|&&(_, p)| p < k).copied().collect();
            let c = Constraints::new(k, 0.2, pins.clone()).expect("valid");
            let args = CliArgs {
                input: "syn-balu".to_owned(),
                algo: algo.to_owned(),
                k,
                ..CliArgs::default()
            };
            let mut rng = mlpart::hypergraph::rng::seeded_rng(1);
            let (p, cut, _, truncation) =
                run_engine(&h, &args, Some(&c), &args.budget, &mut rng, &mut ws).expect(algo);
            assert!(p.validate(&h), "{algo} k={k}");
            assert_eq!(p.k(), k, "{algo}");
            assert!(cut > 0, "{algo} k={k}");
            assert!(truncation.is_none(), "{algo} k={k}");
            for &(v, part) in &pins {
                assert_eq!(p.part(v), part, "{algo} k={k}: pin moved");
            }
        }
    }

    #[test]
    fn budgeted_run_engine_reports_truncation() {
        let h = load_netlist("syn-balu").expect("suite circuit");
        let args = CliArgs {
            input: "syn-balu".to_owned(),
            budget: Budget {
                max_passes: Some(1),
                ..Budget::default()
            },
            ..CliArgs::default()
        };
        let mut ws = RefineWorkspace::new();
        let mut rng = mlpart::hypergraph::rng::seeded_rng(1);
        let (p, cut, _, truncation) =
            run_engine(&h, &args, None, &args.budget, &mut rng, &mut ws).expect("runs");
        assert!(p.validate(&h));
        assert!(cut > 0);
        let t = truncation.expect("one pass cannot finish syn-balu");
        assert_eq!(t.limit.name(), "passes");
    }

    #[test]
    fn parses_supervision_flags() {
        let a =
            parse_run("x.hgr --retries 3 --retry-degrade-passes 2 --checkpoint c.jsonl --resume")
                .expect("parses");
        assert_eq!(a.retries, 3);
        assert_eq!(a.retry_degrade_passes, Some(2));
        assert_eq!(a.checkpoint.as_deref(), Some("c.jsonl"));
        assert!(a.resume);
        // Defaults keep supervision off.
        let d = parse_run("x.hgr").expect("parses");
        assert_eq!(d.retries, 1);
        assert_eq!(d.retry_degrade_passes, None);
        assert_eq!(d.checkpoint, None);
        assert!(!d.resume);
        assert!(parse_args(argv("x.hgr --retries 0")).is_err());
        assert!(parse_args(argv("x.hgr --retries 9")).is_err());
        assert!(parse_args(argv("x.hgr --retries x")).is_err());
        assert!(
            parse_args(argv("x.hgr --resume")).is_err(),
            "--resume needs --checkpoint"
        );
        assert!(
            parse_args(argv("x.hgr --retry-degrade-passes 2")).is_err(),
            "degradation needs retries to degrade from"
        );
        assert!(
            parse_args(argv(
                "x.hgr --algo lsmc --retries 2 --retry-degrade-passes 1"
            ))
            .is_err(),
            "lsmc is unbudgeted"
        );
        // The long help documents the supervision surface.
        for needle in [
            "--retries",
            "--checkpoint",
            "--resume",
            "mlpart-checkpoint-v1",
        ] {
            assert!(HELP.contains(needle), "--help must document {needle:?}");
        }
    }

    /// The supervised per-start wrapper honors the attempt budget and
    /// gates its output through the balance window.
    #[test]
    fn supervised_run_once_gates_on_feasibility() {
        let h = load_netlist("syn-balu").expect("suite circuit");
        let args = CliArgs {
            input: "syn-balu".to_owned(),
            ..CliArgs::default()
        };
        let bounds = balance_bounds(&h, &args, None);
        let mut ws = RefineWorkspace::new();
        let mut rng = mlpart::hypergraph::rng::seeded_rng(1);
        let v = run_once(
            &h,
            &args,
            None,
            &bounds,
            &[],
            &mut rng,
            &mut ws,
            Attempt {
                start: 0,
                attempt: 0,
                budget: None,
            },
        )
        .expect("runs");
        assert!(bounds.is_partition_feasible(&v.partition));
        assert!(v.repair.is_none(), "engine output is already feasible");
        assert!(v.truncation.is_none());
        // A degraded final attempt runs under the attempt's budget, not
        // the caller's unlimited one.
        let degraded = Budget {
            max_passes: Some(1),
            ..Budget::default()
        };
        let mut rng = mlpart::hypergraph::rng::seeded_rng(1);
        let v = run_once(
            &h,
            &args,
            None,
            &bounds,
            &[],
            &mut rng,
            &mut ws,
            Attempt {
                start: 0,
                attempt: 1,
                budget: Some(&degraded),
            },
        )
        .expect("runs");
        assert!(v.truncation.is_some(), "one pass cannot finish syn-balu");
        assert!(bounds.is_partition_feasible(&v.partition));
    }
}
