//! `mlpart` — command-line netlist partitioner.
//!
//! Reads an hMETIS `.hgr` netlist, runs the requested partitioning
//! algorithm for a number of independent starts, reports min/avg/std cut,
//! and optionally writes the best partition (one part id per line).
//!
//! ```text
//! mlpart <netlist.hgr> [--algo ml-c|ml-f|fm|clip|lsmc|two-phase]
//!                      [--k 2|4] [--ratio R] [--threshold T]
//!                      [--runs N] [--seed S] [--threads P]
//!                      [--output best.part] [--stats]
//!                      [--trace-out trace.json] [--report-out report.json]
//! ```
//!
//! `--k 4` uses multilevel quadrisection (only with the ml algorithms).
//! `--stats` prints the per-level refinement trajectory of the first run
//! (multilevel algorithms only). `--threads` spreads the independent starts
//! over worker threads; every start draws its seed from the same per-start
//! stream and the best cut ties break to the lowest start index, so the
//! reported cuts and the written partition are bit-identical at every
//! thread count (only the wall-clock changes).
//!
//! `--trace-out` writes a Chrome Trace Event file (loadable in Perfetto or
//! `chrome://tracing`) and `--report-out` writes a `mlpart-run-report-v1`
//! JSON document; both need a binary built with the `obs` feature and imply
//! tracing for the whole run. Trace *content* (everything except the
//! timestamp fields) is bit-identical across repeats and thread counts.

use mlpart::cluster::MatchConfig;
use mlpart::core::two_phase_fm_in;
use mlpart::fm::fm_partition_in;
use mlpart::gen::by_name;
use mlpart::hypergraph::io::{read_hgr, write_partition};
use mlpart::hypergraph::metrics::CutStats;
use mlpart::hypergraph::rng::MlRng;
use mlpart::lsmc::{lsmc_bipartition, LsmcConfig};
use mlpart::{
    ml_bipartition_in, ml_kway_in, Engine, FmConfig, Hypergraph, LevelStats, MlConfig,
    MlKwayConfig, Partition, RefineWorkspace,
};
use std::io::Read;
use std::process::ExitCode;

#[derive(Debug, Clone, PartialEq)]
struct CliArgs {
    input: String,
    algo: String,
    k: u32,
    ratio: f64,
    threshold: usize,
    runs: usize,
    seed: u64,
    threads: usize,
    output: Option<String>,
    stats: bool,
    trace_out: Option<String>,
    report_out: Option<String>,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            input: String::new(),
            algo: "ml-c".to_owned(),
            k: 2,
            ratio: 0.5,
            threshold: 35,
            runs: 10,
            seed: 1,
            threads: mlpart::exec::default_threads(),
            output: None,
            stats: false,
            trace_out: None,
            report_out: None,
        }
    }
}

const USAGE: &str =
    "usage: mlpart <netlist.hgr | syn-NAME> [--algo ml-c|ml-f|fm|clip|lsmc|two-phase] \
[--k 2|4] [--ratio R] [--threshold T] [--runs N] [--seed S] [--threads P] \
[--output best.part] [--stats] [--trace-out trace.json] [--report-out report.json]";

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliArgs, String> {
    let mut out = CliArgs::default();
    let mut it = args.into_iter().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--algo" => out.algo = value("--algo")?,
            "--k" => {
                out.k = value("--k")?.parse().map_err(|_| "invalid --k")?;
                if out.k != 2 && out.k != 4 {
                    return Err("--k must be 2 or 4".to_owned());
                }
            }
            "--ratio" => {
                out.ratio = value("--ratio")?.parse().map_err(|_| "invalid --ratio")?;
                if !(out.ratio > 0.0 && out.ratio <= 1.0) {
                    return Err("--ratio must be in (0, 1]".to_owned());
                }
            }
            "--threshold" => {
                out.threshold = value("--threshold")?
                    .parse()
                    .map_err(|_| "invalid --threshold")?;
            }
            "--runs" => {
                out.runs = value("--runs")?.parse().map_err(|_| "invalid --runs")?;
                if out.runs == 0 {
                    return Err("--runs must be positive".to_owned());
                }
            }
            "--seed" => out.seed = value("--seed")?.parse().map_err(|_| "invalid --seed")?,
            "--threads" => {
                out.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads")?;
                if out.threads == 0 {
                    return Err("--threads must be positive".to_owned());
                }
            }
            "--output" => out.output = Some(value("--output")?),
            "--stats" => out.stats = true,
            "--trace-out" => out.trace_out = Some(value("--trace-out")?),
            "--report-out" => out.report_out = Some(value("--report-out")?),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if out.input.is_empty() && !other.starts_with('-') => {
                out.input = other.to_owned();
            }
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    if out.input.is_empty() {
        return Err(USAGE.to_owned());
    }
    Ok(out)
}

fn load_netlist(input: &str) -> Result<Hypergraph, String> {
    // Synthetic suite circuits can be named directly (prefix `syn-`).
    if let Some(circuit) = input.strip_prefix("syn-").and_then(by_name) {
        return Ok(circuit.generate(1997));
    }
    if input == "-" {
        let mut text = Vec::new();
        std::io::stdin()
            .read_to_end(&mut text)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        return read_hgr(&text[..]).map_err(|e| format!("cannot parse netlist: {e}"));
    }
    let file = std::fs::File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    read_hgr(file).map_err(|e| format!("cannot parse {input}: {e}"))
}

/// One run's outcome: the partition, its cut, and (for the multilevel
/// algorithms) the per-level refinement trajectory.
type RunOutcome = (Partition, u64, Vec<LevelStats>);

fn run_once(
    h: &Hypergraph,
    args: &CliArgs,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> Result<RunOutcome, String> {
    let fm_cfg = |engine| FmConfig {
        engine,
        ..FmConfig::default()
    };
    let ml_cfg = |engine| MlConfig {
        matching_ratio: args.ratio,
        coarsen_threshold: args.threshold,
        fm: fm_cfg(engine),
        ..MlConfig::default()
    };
    if args.k == 4 {
        let cfg = MlKwayConfig {
            matching_ratio: args.ratio,
            coarsen_threshold: args.threshold.max(100),
            ..MlKwayConfig::default()
        };
        if !args.algo.starts_with("ml") {
            return Err("--k 4 requires --algo ml-c or ml-f".to_owned());
        }
        let (p, r) = ml_kway_in(h, &cfg, &[], rng, ws);
        return Ok((p, r.cut, r.level_stats));
    }
    Ok(match args.algo.as_str() {
        "ml-c" => {
            let (p, r) = ml_bipartition_in(h, &ml_cfg(Engine::Clip), rng, ws);
            (p, r.cut, r.level_stats)
        }
        "ml-f" => {
            let (p, r) = ml_bipartition_in(h, &ml_cfg(Engine::Fm), rng, ws);
            (p, r.cut, r.level_stats)
        }
        "fm" => {
            let (p, r) = fm_partition_in(h, None, &fm_cfg(Engine::Fm), rng, ws);
            (p, r.cut, Vec::new())
        }
        "clip" => {
            let (p, r) = fm_partition_in(h, None, &fm_cfg(Engine::Clip), rng, ws);
            (p, r.cut, Vec::new())
        }
        "lsmc" => {
            let cfg = LsmcConfig {
                descents: 20,
                ..LsmcConfig::default()
            };
            let (p, r) = lsmc_bipartition(h, &cfg, rng);
            (p, r.cut, Vec::new())
        }
        "two-phase" => {
            let (p, r) = two_phase_fm_in(
                h,
                &fm_cfg(Engine::Fm),
                &MatchConfig::with_ratio(args.ratio),
                rng,
                ws,
            );
            (p, r.cut, Vec::new())
        }
        other => return Err(format!("unknown algorithm {other:?}\n{USAGE}")),
    })
}

/// Renders `--stats` from the captured trace: the same per-level trajectory
/// as [`print_level_stats`], reconstructed from span/counter events instead
/// of the `LevelStats` side channel (the trace is the source of truth when
/// tracing is on). Only the first start is shown, matching the legacy path.
#[cfg(feature = "obs")]
fn print_level_rows(trace: &mlpart::obs::Trace) {
    let rows: Vec<_> = mlpart::obs::report::level_rows(trace)
        .into_iter()
        .filter(|r| r.start == 0)
        .collect();
    if rows.is_empty() {
        eprintln!("per-level stats: none (flat algorithm)");
        return;
    }
    eprintln!("level  modules  cut_before  cut_after  kept/attempted  rebalance  passes");
    for r in &rows {
        eprintln!(
            "{:>5}  {:>7}  {:>10}  {:>9}  {:>6}/{:<7}  {:>9}  {:>6}",
            r.level,
            r.modules,
            r.cut_before,
            r.cut_after,
            r.kept,
            r.attempted,
            r.rebalance_moves,
            r.passes,
        );
    }
}

/// Writes `content` to `path`, mapping failures to a printable message.
#[cfg(feature = "obs")]
fn write_text(path: &str, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Prints the per-level refinement trajectory collected by a multilevel run.
fn print_level_stats(stats: &[LevelStats]) {
    if stats.is_empty() {
        eprintln!("per-level stats: none (flat algorithm)");
        return;
    }
    eprintln!("level  modules  cut_before  cut_after  kept/attempted  rebalance  passes  fill_ms");
    for s in stats {
        eprintln!(
            "{:>5}  {:>7}  {:>10}  {:>9}  {:>6}/{:<7}  {:>9}  {:>6}  {:>7.3}",
            s.level,
            s.modules,
            s.cut_before,
            s.cut_after,
            s.kept_moves,
            s.attempted_moves,
            s.rebalance_moves,
            s.passes,
            s.fill_time_ns as f64 / 1e6,
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let h = match load_netlist(&args.input) {
        Ok(h) => h,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "{}: {} modules, {} nets, {} pins",
        args.input,
        h.num_modules(),
        h.num_nets(),
        h.num_pins()
    );
    let tracing = args.trace_out.is_some() || args.report_out.is_some();
    #[cfg(not(feature = "obs"))]
    if tracing {
        eprintln!(
            "--trace-out/--report-out need a binary built with the `obs` feature \
             (cargo build --release --features obs)"
        );
        return ExitCode::from(2);
    }
    #[cfg(feature = "obs")]
    if tracing {
        mlpart::obs::force_enabled(true);
    }
    // Every start is an independent seeded job; the executor spreads them
    // over `--threads` workers and returns the outcomes in start order, so
    // everything below this line is oblivious to the thread count. With
    // tracing on, the whole batch is captured under one `run` span and the
    // per-start streams arrive merged in start order.
    let run_batch = || {
        #[cfg(feature = "obs")]
        let _obs_run = mlpart::obs::span(
            "run",
            &[
                ("runs", args.runs.into()),
                ("seed", args.seed.into()),
                ("k", args.k.into()),
            ],
        );
        mlpart::exec::run_starts(args.runs, args.seed, args.threads, &|rng, ws| {
            run_once(&h, &args, rng, ws)
        })
    };
    #[cfg(feature = "obs")]
    let ((outcomes, timing), trace) = mlpart::obs::capture(run_batch);
    #[cfg(not(feature = "obs"))]
    let (outcomes, timing) = run_batch();
    let mut best: Option<(u64, Partition)> = None;
    let mut cuts = Vec::with_capacity(args.runs);
    #[cfg(feature = "obs")]
    let print_legacy_stats = args.stats && trace.is_none();
    #[cfg(not(feature = "obs"))]
    let print_legacy_stats = args.stats;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok((p, cut, level_stats)) => {
                if print_legacy_stats && i == 0 {
                    print_level_stats(&level_stats);
                }
                cuts.push(cut);
                if best.as_ref().is_none_or(|(c, _)| cut < *c) {
                    best = Some((cut, p));
                }
            }
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    #[cfg(feature = "obs")]
    if let Some(trace) = trace {
        if args.stats {
            print_level_rows(&trace);
        }
        if let Some(path) = &args.trace_out {
            if let Err(msg) = write_text(path, &mlpart::obs::to_chrome_trace(&trace)) {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
            eprintln!("chrome trace written to {path}");
        }
        if let Some(path) = &args.report_out {
            let report = mlpart::obs::report::RunReport {
                meta: vec![
                    (
                        "circuit",
                        mlpart::obs::V::S(Box::leak(args.input.clone().into_boxed_str())),
                    ),
                    (
                        "algo",
                        mlpart::obs::V::S(Box::leak(args.algo.clone().into_boxed_str())),
                    ),
                    ("k", args.k.into()),
                    ("ratio", args.ratio.into()),
                    ("threshold", args.threshold.into()),
                    ("runs", args.runs.into()),
                    ("seed", args.seed.into()),
                    ("threads", args.threads.into()),
                ],
                cuts: cuts.clone(),
                wall_secs: timing.wall_secs,
                cpu_secs: timing.cpu_secs,
                trace,
            };
            if let Err(msg) = write_text(path, &report.to_json()) {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
            eprintln!("run report written to {path}");
        }
    }
    let stats = CutStats::from_samples(&cuts);
    println!(
        "{} x{} runs: min {} avg {:.1} std {:.1} ({:.2}s wall, {:.2}s cpu, {} threads)",
        args.algo,
        args.runs,
        stats.min,
        stats.avg,
        stats.std,
        timing.wall_secs,
        timing.cpu_secs,
        args.threads.min(args.runs),
    );
    if let Some(path) = &args.output {
        let (_, p) = best.expect("at least one run");
        match std::fs::File::create(path)
            .map_err(|e| e.to_string())
            .and_then(|f| write_partition(&p, f).map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("best partition written to {path}"),
            Err(msg) => {
                eprintln!("cannot write {path}: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        std::iter::once("mlpart".to_owned())
            .chain(s.split_whitespace().map(str::to_owned))
            .collect()
    }

    #[test]
    fn parses_full_command_line() {
        let a = parse_args(argv(
            "design.hgr --algo ml-f --k 4 --ratio 0.33 --runs 3 --seed 9 --threads 2 \
             --output out.part --stats",
        ))
        .expect("parses");
        assert_eq!(a.input, "design.hgr");
        assert_eq!(a.algo, "ml-f");
        assert_eq!(a.k, 4);
        assert_eq!(a.ratio, 0.33);
        assert_eq!(a.runs, 3);
        assert_eq!(a.threads, 2);
        assert_eq!(a.output.as_deref(), Some("out.part"));
        assert!(a.stats);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(argv("")).is_err());
        assert!(parse_args(argv("x.hgr --k 3")).is_err());
        assert!(parse_args(argv("x.hgr --ratio 0")).is_err());
        assert!(parse_args(argv("x.hgr --runs 0")).is_err());
        assert!(parse_args(argv("x.hgr --threads 0")).is_err());
        assert!(parse_args(argv("x.hgr --threads x")).is_err());
        assert!(parse_args(argv("x.hgr --bogus 1")).is_err());
    }

    #[test]
    fn synthetic_names_load() {
        let h = load_netlist("syn-balu").expect("suite circuit");
        assert_eq!(h.num_modules(), 801);
        assert!(load_netlist("syn-nonexistent").is_err());
    }

    #[test]
    fn run_once_covers_all_algorithms() {
        let h = load_netlist("syn-balu").expect("suite circuit");
        let mut args = CliArgs {
            input: "syn-balu".to_owned(),
            runs: 1,
            ..CliArgs::default()
        };
        let mut ws = RefineWorkspace::new();
        for algo in ["ml-c", "ml-f", "fm", "clip", "lsmc", "two-phase"] {
            args.algo = algo.to_owned();
            let mut rng = mlpart::hypergraph::rng::seeded_rng(1);
            let (p, cut, level_stats) = run_once(&h, &args, &mut rng, &mut ws).expect(algo);
            assert!(p.validate(&h), "{algo}");
            assert!(cut > 0, "{algo}");
            if algo.starts_with("ml") {
                assert!(!level_stats.is_empty(), "{algo} should report level stats");
            }
        }
        let mut rng = mlpart::hypergraph::rng::seeded_rng(1);
        args.algo = "unknown".to_owned();
        assert!(run_once(&h, &args, &mut rng, &mut ws).is_err());
        // Quadrisection path.
        args.algo = "ml-f".to_owned();
        args.k = 4;
        let (p, _, level_stats) = run_once(&h, &args, &mut rng, &mut ws).expect("quadrisection");
        assert_eq!(p.k(), 4);
        assert!(!level_stats.is_empty(), "quadrisection reports level stats");
        args.algo = "fm".to_owned();
        assert!(
            run_once(&h, &args, &mut rng, &mut ws).is_err(),
            "flat fm cannot do k=4 here"
        );
    }
}
