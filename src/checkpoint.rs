//! `mlpart-checkpoint-v1` — crash-safe on-disk checkpoints for supervised
//! batches.
//!
//! A checkpoint is a JSONL file (schema: `schemas/checkpoint-v1.schema.json`)
//! whose first line pins the invocation identity (netlist, algorithm,
//! constraints, seed, retry policy — everything normative except thread
//! count and output paths) and whose remaining lines each record one
//! completed start: its outcome (partition assignment, cut, truncation and
//! repair records, or the final-attempt failure), the retries the
//! supervisor absorbed, and the start's full trace contribution. The file
//! is rewritten atomically (write-temp-then-rename, see
//! [`mlpart_hypergraph::io::write_atomic_with`]) every time a start
//! completes, so a `SIGKILL` at any instant leaves either the previous
//! consistent checkpoint or the next one — never a torn file.
//!
//! On `--resume` the loader byte-compares the header against the one the
//! current invocation would write (thread count and artifact paths are
//! excluded from the header, so both may differ freely) and replays the
//! recorded starts through [`ResumeState`]; the executor then runs only the
//! missing starts. Because per-start seed streams are functions of the
//! start index alone and trace contributions are spliced in start order,
//! the resumed batch's partition output and stripped run report are
//! byte-identical to an uninterrupted run's.
//!
//! Like the `obs` exporters, the format is hand-rolled: the writer emits a
//! fixed key order and the parser is a strict cursor over exactly that
//! shape, which keeps round-trips byte-exact (including `u64` values that
//! a float-based JSON parser would corrupt) with no serde dependency.

use mlpart_core::{LevelStats, Truncation};
use mlpart_exec::supervise::StartContribution;
use mlpart_exec::{PriorStart, ResumeState, RetryRecord, StartDone, StartFailure};
use mlpart_fm::{Budget, BudgetLimit, RepairRecord};
use mlpart_hypergraph::io::write_atomic;
use mlpart_hypergraph::metrics::cut;
use mlpart_hypergraph::{Hypergraph, Partition};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// The schema tag every checkpoint header carries.
pub const SCHEMA: &str = "mlpart-checkpoint-v1";

/// One start's complete result as the CLI driver computes it: the job
/// value persisted by checkpoints and reduced into the final answer.
#[derive(Debug, Clone)]
pub struct StartOutcome {
    /// The (possibly repaired) partition.
    pub partition: Partition,
    /// Cut weight of `partition` (post-repair when `repair` is set).
    pub cut: u64,
    /// Per-level refinement trajectory (multilevel algorithms only).
    /// **Not persisted**: restored starts report an empty trajectory; the
    /// trace carries the same rows for `obs` builds.
    pub level_stats: Vec<LevelStats>,
    /// Budget-truncation record, when a `--max-*` limit fired.
    pub truncation: Option<Truncation>,
    /// Balance-repair record, when the start's raw solution violated its
    /// balance window. `feasible: false` means repair failed and the
    /// driver must not emit this solution.
    pub repair: Option<RepairRecord>,
}

/// The job value the CLI runs under supervision: a start either computes
/// a [`StartOutcome`] or reports a configuration error message.
pub type StartValue = Result<StartOutcome, String>;

/// The invocation identity pinned by a checkpoint header. Thread count and
/// artifact paths are deliberately absent: both may change across an
/// interrupt/resume split without perturbing normative results.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Netlist argument (path, `syn-NAME`, or `-`).
    pub circuit: String,
    /// Algorithm name.
    pub algo: String,
    /// Part count.
    pub k: u32,
    /// Explicit ε, when given.
    pub epsilon: Option<f64>,
    /// `.fix` file path, when given.
    pub fixed: Option<String>,
    /// Matching ratio.
    pub ratio: f64,
    /// Coarsening threshold.
    pub threshold: usize,
    /// Independent starts in the batch.
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
    /// Attempts per start (`--retries`).
    pub retries: u32,
    /// Final-attempt degraded pass budget (`--retry-degrade-passes`).
    pub degraded_passes: Option<u64>,
    /// The per-start budget.
    pub budget: Budget,
    /// Whether tracing was on (trace contributions recorded). A resumed
    /// run must match, or its report would silently lose restored spans.
    pub traced: bool,
}

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    esc(out, s);
    out.push('"');
}

fn write_opt_str(out: &mut String, s: Option<&str>) {
    match s {
        Some(s) => write_str(out, s),
        None => out.push_str("null"),
    }
}

/// Integral finite values print as integer digits, everything else via
/// `Display` (shortest round-trip) — the same policy as `obs::json`, so
/// header lines are reproducible bytes.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() && v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

impl CheckpointConfig {
    /// The header line this invocation writes — and the exact bytes a
    /// `--resume` of it must find on the first line.
    pub fn header_line(&self) -> String {
        let mut o = String::with_capacity(256);
        o.push_str("{\"schema\":\"");
        o.push_str(SCHEMA);
        o.push_str("\",\"config\":{\"circuit\":");
        write_str(&mut o, &self.circuit);
        o.push_str(",\"algo\":");
        write_str(&mut o, &self.algo);
        let _ = write!(o, ",\"k\":{}", self.k);
        o.push_str(",\"epsilon\":");
        match self.epsilon {
            Some(e) => write_f64(&mut o, e),
            None => o.push_str("null"),
        }
        o.push_str(",\"fixed\":");
        write_opt_str(&mut o, self.fixed.as_deref());
        o.push_str(",\"ratio\":");
        write_f64(&mut o, self.ratio);
        let _ = write!(
            o,
            ",\"threshold\":{},\"runs\":{},\"seed\":{},\"retries\":{}",
            self.threshold, self.runs, self.seed, self.retries
        );
        o.push_str(",\"degraded_passes\":");
        write_opt_u64(&mut o, self.degraded_passes);
        o.push_str(",\"max_moves\":");
        write_opt_u64(&mut o, self.budget.max_moves);
        o.push_str(",\"max_passes\":");
        write_opt_u64(&mut o, self.budget.max_passes);
        o.push_str(",\"max_levels\":");
        write_opt_u64(&mut o, self.budget.max_levels);
        o.push_str(",\"deadline_secs\":");
        match self.budget.soft_deadline_secs {
            Some(s) => write_f64(&mut o, s),
            None => o.push_str("null"),
        }
        let _ = write!(o, ",\"traced\":{}}}}}", self.traced);
        o
    }
}

fn write_retry(out: &mut String, r: &RetryRecord) {
    let _ = write!(out, "{{\"attempt\":{},\"message\":", r.attempt);
    write_str(out, &r.message);
    out.push_str(",\"phase\":");
    write_opt_str(out, r.phase.as_deref());
    out.push('}');
}

fn write_truncation(out: &mut String, t: &Truncation) {
    out.push_str("{\"limit\":");
    write_str(out, t.limit.name());
    out.push_str(",\"site\":");
    write_str(out, t.site);
    out.push_str(",\"level\":");
    write_opt_u64(out, t.level.map(u64::from));
    out.push_str(",\"pass\":");
    write_opt_u64(out, t.pass.map(u64::from));
    out.push('}');
}

fn write_repair(out: &mut String, r: &RepairRecord) {
    let _ = write!(
        out,
        "{{\"moves\":{},\"cut_before\":{},\"cut_after\":{},\"feasible\":{}}}",
        r.moves, r.cut_before, r.cut_after, r.feasible
    );
}

#[cfg(feature = "obs")]
fn trace_text(t: &StartContribution) -> String {
    mlpart_obs::to_jsonl(t)
}
#[cfg(not(feature = "obs"))]
fn trace_text(_t: &StartContribution) -> String {
    String::new()
}

#[cfg(feature = "obs")]
fn parse_trace(start: usize, text: &str) -> Result<StartContribution, String> {
    mlpart_obs::trace_from_jsonl(text).map_err(|e| format!("start {start}: bad trace: {e}"))
}
#[cfg(not(feature = "obs"))]
fn parse_trace(_start: usize, _text: &str) -> Result<StartContribution, String> {
    Ok(())
}

/// Serializes one completed start as its checkpoint record line (no
/// trailing newline).
pub fn record_line(done: &StartDone<'_, StartValue>) -> String {
    let mut o = String::with_capacity(256);
    let _ = write!(
        o,
        "{{\"start\":{},\"attempts\":{},\"retries\":[",
        done.start, done.attempts
    );
    for (n, r) in done.retries.iter().enumerate() {
        if n > 0 {
            o.push(',');
        }
        write_retry(&mut o, r);
    }
    o.push_str("],\"outcome\":");
    match done.outcome {
        Ok(Ok(v)) => {
            let _ = write!(o, "{{\"ok\":{{\"cut\":{},\"parts\":[", v.cut);
            for (n, &p) in v.partition.assignment().iter().enumerate() {
                if n > 0 {
                    o.push(',');
                }
                let _ = write!(o, "{p}");
            }
            o.push_str("],\"truncation\":");
            match &v.truncation {
                Some(t) => write_truncation(&mut o, t),
                None => o.push_str("null"),
            }
            o.push_str(",\"repair\":");
            match &v.repair {
                Some(r) => write_repair(&mut o, r),
                None => o.push_str("null"),
            }
            o.push_str("}}");
        }
        Ok(Err(msg)) => {
            o.push_str("{\"err\":");
            write_str(&mut o, msg);
            o.push('}');
        }
        Err(f) => {
            o.push_str("{\"failed\":{\"message\":");
            write_str(&mut o, &f.message);
            o.push_str(",\"phase\":");
            write_opt_str(&mut o, f.phase.as_deref());
            o.push_str("}}");
        }
    }
    o.push_str(",\"trace\":");
    write_str(&mut o, &trace_text(done.trace));
    o.push('}');
    o
}

/// Strict cursor over one checkpoint line. The writer emits a fixed key
/// order, so the parser expects exactly that shape; anything else is a
/// named error, never a panic.
struct Cur<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(s: &'a str) -> Self {
        Cur { s, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        // pos only ever advances by lengths of prefixes of rest(), so it
        // stays on a char boundary; out-of-range would be a cursor bug and
        // parses as exhausted input rather than a panic.
        self.s.get(self.pos..).unwrap_or("")
    }

    fn lit(&mut self, l: &str) -> Result<(), String> {
        if self.rest().starts_with(l) {
            self.pos += l.len();
            Ok(())
        } else {
            let got: String = self.rest().chars().take(20).collect();
            Err(format!(
                "expected {l:?} at byte {}, found {got:?}",
                self.pos
            ))
        }
    }

    fn peek(&self, l: &str) -> bool {
        self.rest().starts_with(l)
    }

    fn uint(&mut self) -> Result<u64, String> {
        let digits: &str = {
            let rest = self.rest();
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest.get(..end).unwrap_or(rest)
        };
        if digits.is_empty() {
            return Err(format!("expected a number at byte {}", self.pos));
        }
        self.pos += digits.len();
        digits
            .parse::<u64>()
            .map_err(|e| format!("bad number {digits:?}: {e}"))
    }

    fn opt_uint(&mut self) -> Result<Option<u64>, String> {
        if self.peek("null") {
            self.pos += 4;
            Ok(None)
        } else {
            self.uint().map(Some)
        }
    }

    fn boolean(&mut self) -> Result<bool, String> {
        if self.peek("true") {
            self.pos += 4;
            Ok(true)
        } else if self.peek("false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(format!("expected a boolean at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.lit("\"")?;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars
                                .next()
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            code = code * 16
                                + h.to_digit(16)
                                    .ok_or_else(|| format!("bad \\u hex digit {h:?}"))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u code point {code:#x}"))?,
                        );
                    }
                    Some((_, e)) => return Err(format!("bad escape \\{e}")),
                    None => return Err("truncated escape".to_string()),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    fn opt_string(&mut self) -> Result<Option<String>, String> {
        if self.peek("null") {
            self.pos += 4;
            Ok(None)
        } else {
            self.string().map(Some)
        }
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.s.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.pos))
        }
    }
}

fn limit_from_name(name: &str) -> Result<BudgetLimit, String> {
    Ok(match name {
        "moves" => BudgetLimit::Moves,
        "passes" => BudgetLimit::Passes,
        "levels" => BudgetLimit::Levels,
        "deadline" => BudgetLimit::Deadline,
        "injected" => BudgetLimit::Injected,
        other => return Err(format!("unknown budget limit {other:?}")),
    })
}

fn site_from_name(name: &str) -> Result<&'static str, String> {
    Ok(match name {
        "pass" => "pass",
        "level" => "level",
        other => return Err(format!("unknown truncation site {other:?}")),
    })
}

fn parse_truncation(c: &mut Cur) -> Result<Truncation, String> {
    c.lit("{\"limit\":")?;
    let limit = limit_from_name(&c.string()?)?;
    c.lit(",\"site\":")?;
    let site = site_from_name(&c.string()?)?;
    c.lit(",\"level\":")?;
    let level = c.opt_uint()?;
    c.lit(",\"pass\":")?;
    let pass = c.opt_uint()?;
    c.lit("}")?;
    let narrow = |v: Option<u64>| -> Result<Option<u32>, String> {
        v.map(|v| u32::try_from(v).map_err(|_| format!("level/pass {v} out of range")))
            .transpose()
    };
    Ok(Truncation {
        limit,
        site,
        level: narrow(level)?,
        pass: narrow(pass)?,
    })
}

fn parse_repair(c: &mut Cur) -> Result<RepairRecord, String> {
    c.lit("{\"moves\":")?;
    let moves = c.uint()?;
    c.lit(",\"cut_before\":")?;
    let cut_before = c.uint()?;
    c.lit(",\"cut_after\":")?;
    let cut_after = c.uint()?;
    c.lit(",\"feasible\":")?;
    let feasible = c.boolean()?;
    c.lit("}")?;
    Ok(RepairRecord {
        moves,
        cut_before,
        cut_after,
        feasible,
    })
}

/// Parses one record line back into the [`PriorStart`] the executor
/// replays. `h` anchors partition reconstruction (assignment length and
/// part ids are validated, and the stored cut is recomputed and checked).
fn parse_record(line: &str, h: &Hypergraph, k: u32) -> Result<PriorStart<StartValue>, String> {
    let mut c = Cur::new(line);
    c.lit("{\"start\":")?;
    let start = usize::try_from(c.uint()?).map_err(|e| e.to_string())?;
    c.lit(",\"attempts\":")?;
    let attempts = u32::try_from(c.uint()?).map_err(|_| "attempts out of range".to_string())?;
    c.lit(",\"retries\":[")?;
    let mut retries = Vec::new();
    while !c.peek("]") {
        if !retries.is_empty() {
            c.lit(",")?;
        }
        c.lit("{\"attempt\":")?;
        let attempt = u32::try_from(c.uint()?).map_err(|_| "attempt out of range".to_string())?;
        c.lit(",\"message\":")?;
        let message = c.string()?;
        c.lit(",\"phase\":")?;
        let phase = c.opt_string()?;
        c.lit("}")?;
        retries.push(RetryRecord {
            start,
            attempt,
            message,
            phase,
        });
    }
    c.lit("],\"outcome\":")?;
    let outcome: Result<StartValue, StartFailure> = if c.peek("{\"ok\":") {
        c.lit("{\"ok\":{\"cut\":")?;
        let stored_cut = c.uint()?;
        c.lit(",\"parts\":[")?;
        let mut parts: Vec<u32> = Vec::new();
        while !c.peek("]") {
            if !parts.is_empty() {
                c.lit(",")?;
            }
            parts.push(u32::try_from(c.uint()?).map_err(|_| "part id out of range".to_string())?);
        }
        c.lit("],\"truncation\":")?;
        let truncation = if c.peek("null") {
            c.lit("null")?;
            None
        } else {
            Some(parse_truncation(&mut c)?)
        };
        c.lit(",\"repair\":")?;
        let repair = if c.peek("null") {
            c.lit("null")?;
            None
        } else {
            Some(parse_repair(&mut c)?)
        };
        c.lit("}}")?;
        let partition = Partition::from_assignment(h, k, parts)
            .ok_or_else(|| format!("start {start}: assignment does not fit the netlist"))?;
        if cut(h, &partition) != stored_cut {
            return Err(format!(
                "start {start}: stored cut {stored_cut} disagrees with the assignment"
            ));
        }
        Ok(Ok(StartOutcome {
            partition,
            cut: stored_cut,
            level_stats: Vec::new(),
            truncation,
            repair,
        }))
    } else if c.peek("{\"err\":") {
        c.lit("{\"err\":")?;
        let msg = c.string()?;
        c.lit("}")?;
        Ok(Err(msg))
    } else {
        c.lit("{\"failed\":{\"message\":")?;
        let message = c.string()?;
        c.lit(",\"phase\":")?;
        let phase = c.opt_string()?;
        c.lit("}}")?;
        Err(StartFailure {
            start,
            message,
            phase,
        })
    };
    c.lit(",\"trace\":")?;
    let trace_text = c.string()?;
    c.lit("}")?;
    c.done()?;
    Ok(PriorStart {
        start,
        attempts,
        outcome,
        retries,
        trace: parse_trace(start, &trace_text)?,
    })
}

/// A parsed checkpoint: the resume state for the executor plus the
/// original record lines, keyed by start, so a resumed run's writer keeps
/// the restored records verbatim.
#[derive(Debug, Default)]
pub struct LoadedCheckpoint {
    /// Completed starts for [`mlpart_exec::run_supervised`] to skip.
    pub resume: ResumeState<StartValue>,
    /// The record lines exactly as found, keyed by start index.
    pub lines: BTreeMap<usize, String>,
}

/// Parses checkpoint `text` written by an invocation with identity
/// `config`, validating every record against `h`.
///
/// # Errors
///
/// A message naming the problem: a different schema version, a header
/// that does not match this invocation (different flags, netlist, seed,
/// or retry policy), or a malformed / internally inconsistent record.
pub fn load(
    text: &str,
    config: &CheckpointConfig,
    h: &Hypergraph,
) -> Result<LoadedCheckpoint, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("checkpoint is empty")?;
    let expected = config.header_line();
    if header != expected {
        return if header.starts_with("{\"schema\":\"mlpart-checkpoint-") {
            if header.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")) {
                Err(
                    "checkpoint was written by a different invocation (netlist, algorithm, \
                     constraints, seed, budget, retry policy, and tracing must all match; \
                     --threads and output paths may differ)"
                        .to_string(),
                )
            } else {
                Err("unsupported checkpoint schema version".to_string())
            }
        } else {
            Err("not a mlpart checkpoint (missing schema header)".to_string())
        };
    }
    let mut out = LoadedCheckpoint::default();
    for (n, line) in lines.enumerate() {
        let prior =
            parse_record(line, h, config.k).map_err(|e| format!("checkpoint record {n}: {e}"))?;
        if prior.start >= config.runs {
            return Err(format!(
                "checkpoint record {n}: start {} out of range for --runs {}",
                prior.start, config.runs
            ));
        }
        if out.lines.contains_key(&prior.start) {
            return Err(format!(
                "checkpoint record {n}: start {} recorded twice",
                prior.start
            ));
        }
        out.lines.insert(prior.start, line.to_string());
        out.resume.done.push(prior);
    }
    Ok(out)
}

struct WriterState {
    records: BTreeMap<usize, String>,
    error: Option<String>,
}

/// Serializes completed starts to a checkpoint file, atomically rewriting
/// the whole file on every completion. Shared across executor workers (the
/// completion sink runs on whichever worker finished the start), so the
/// record map sits behind a mutex; write failures are latched and surfaced
/// once via [`CheckpointWriter::error`] instead of panicking a worker.
pub struct CheckpointWriter {
    path: String,
    header: String,
    state: Mutex<WriterState>,
}

impl CheckpointWriter {
    /// Creates the writer and immediately persists the header (plus any
    /// `restored` record lines from the checkpoint being resumed), so even
    /// a kill before the first fresh completion leaves a valid file.
    ///
    /// # Errors
    ///
    /// The initial write's I/O error, as a printable message.
    pub fn create(
        path: &str,
        header: String,
        restored: BTreeMap<usize, String>,
    ) -> Result<Self, String> {
        let w = CheckpointWriter {
            path: path.to_string(),
            header,
            state: Mutex::new(WriterState {
                records: restored,
                error: None,
            }),
        };
        {
            let mut st = w.lock_state();
            w.rewrite(&mut st);
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
        }
        Ok(w)
    }

    /// A poisoned lock only means some worker panicked mid-`rewrite`; the
    /// guarded state (record map + latched error) is still consistent, so
    /// recover it rather than cascading the panic into every other worker.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, WriterState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn rewrite(&self, st: &mut WriterState) {
        let mut doc = String::with_capacity(
            self.header.len() + st.records.values().map(|r| r.len() + 1).sum::<usize>() + 1,
        );
        doc.push_str(&self.header);
        doc.push('\n');
        for line in st.records.values() {
            doc.push_str(line);
            doc.push('\n');
        }
        if let Err(e) = write_atomic(&self.path, doc.as_bytes()) {
            st.error
                .get_or_insert_with(|| format!("cannot write {}: {e}", self.path));
        }
    }

    /// The completion sink: records `done` and atomically rewrites the
    /// file. Called from executor workers in completion order; the on-disk
    /// record order is by start index regardless.
    pub fn record(&self, done: &StartDone<'_, StartValue>) {
        let line = record_line(done);
        let mut st = self.lock_state();
        st.records.insert(done.start, line);
        self.rewrite(&mut st);
    }

    /// The first write error, if any occurred. Checked once after the
    /// batch so a broken checkpoint path fails the run visibly.
    pub fn error(&self) -> Option<String> {
        self.lock_state().error.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::HypergraphBuilder;

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(n);
        for i in 0..n - 1 {
            b.add_net([i, i + 1]).expect("valid net");
        }
        b.build().expect("valid hypergraph")
    }

    fn config() -> CheckpointConfig {
        CheckpointConfig {
            circuit: "syn-balu".to_string(),
            algo: "ml-c".to_string(),
            k: 2,
            epsilon: None,
            fixed: None,
            ratio: 0.5,
            threshold: 35,
            runs: 4,
            seed: u64::MAX - 1, // exercise the full-u64 header path
            retries: 3,
            degraded_passes: Some(2),
            budget: Budget::UNLIMITED,
            traced: false,
        }
    }

    fn outcome(h: &Hypergraph) -> StartOutcome {
        let parts = (0..h.num_modules())
            .map(|i| u32::from(i >= h.num_modules() / 2))
            .collect();
        let partition = Partition::from_assignment(h, 2, parts).expect("valid");
        let cut_now = cut(h, &partition);
        StartOutcome {
            partition,
            cut: cut_now,
            level_stats: Vec::new(),
            truncation: Some(Truncation {
                limit: BudgetLimit::Passes,
                site: "pass",
                level: Some(1),
                pass: Some(3),
            }),
            repair: Some(RepairRecord {
                moves: 2,
                cut_before: cut_now + 4,
                cut_after: cut_now,
                feasible: true,
            }),
        }
    }

    fn done_line(h: &Hypergraph) -> String {
        let value: StartValue = Ok(outcome(h));
        let retries = vec![RetryRecord {
            start: 1,
            attempt: 0,
            message: "injected fault: panic@attempt:8 \"quoted\"".to_string(),
            phase: Some("fm_refine".to_string()),
        }];
        record_line(&StartDone {
            start: 1,
            attempts: 2,
            outcome: Ok(&value),
            retries: &retries,
            trace: &StartContribution::default(),
        })
    }

    #[test]
    fn record_round_trips_through_the_parser() {
        let h = chain(8);
        let line = done_line(&h);
        let prior = parse_record(&line, &h, 2).expect("parses");
        assert_eq!(prior.start, 1);
        assert_eq!(prior.attempts, 2);
        assert_eq!(prior.retries.len(), 1);
        assert_eq!(prior.retries[0].attempt, 0);
        assert!(prior.retries[0].message.contains("\"quoted\""));
        let v = prior.outcome.expect("ok").expect("outcome");
        assert_eq!(v.cut, outcome(&h).cut);
        assert_eq!(v.partition.assignment(), outcome(&h).partition.assignment());
        assert_eq!(v.truncation, outcome(&h).truncation);
        assert_eq!(v.repair, outcome(&h).repair);
        // Re-serializing the parsed record reproduces the bytes.
        let value: StartValue = Ok(v);
        let again = record_line(&StartDone {
            start: prior.start,
            attempts: prior.attempts,
            outcome: Ok(&value),
            retries: &prior.retries,
            trace: &prior.trace,
        });
        assert_eq!(line, again);
    }

    #[test]
    fn failed_and_config_error_outcomes_round_trip() {
        let h = chain(8);
        let failure = StartFailure {
            start: 2,
            message: "boom".to_string(),
            phase: None,
        };
        let line = record_line(&StartDone::<StartValue> {
            start: 2,
            attempts: 3,
            outcome: Err(&failure),
            retries: &[],
            trace: &StartContribution::default(),
        });
        let prior = parse_record(&line, &h, 2).expect("parses");
        let f = prior.outcome.expect_err("failed");
        assert_eq!((f.start, f.message.as_str()), (2, "boom"));

        let value: StartValue = Err("unknown algorithm \"x\"".to_string());
        let line = record_line(&StartDone {
            start: 0,
            attempts: 1,
            outcome: Ok(&value),
            retries: &[],
            trace: &StartContribution::default(),
        });
        let prior = parse_record(&line, &h, 2).expect("parses");
        assert_eq!(
            prior.outcome.expect("ok").expect_err("config error"),
            "unknown algorithm \"x\""
        );
    }

    #[test]
    fn load_round_trips_and_validates_headers() {
        let h = chain(8);
        let cfg = config();
        let text = format!("{}\n{}\n", cfg.header_line(), done_line(&h));
        let loaded = load(&text, &cfg, &h).expect("loads");
        assert_eq!(loaded.resume.done.len(), 1);
        assert_eq!(loaded.lines.get(&1), Some(&done_line(&h)));

        // Any identity drift is a refusal, not a silent partial resume.
        let mut other = config();
        other.seed += 1;
        let e = load(&text, &other, &h).expect_err("seed drift");
        assert!(e.contains("different invocation"), "{e}");
        let e = load("{\"schema\":\"mlpart-checkpoint-v0\"}\n", &cfg, &h).expect_err("version");
        assert!(e.contains("schema version"), "{e}");
        let e = load("not json\n", &cfg, &h).expect_err("garbage");
        assert!(e.contains("not a mlpart checkpoint"), "{e}");
        let e = load("", &cfg, &h).expect_err("empty");
        assert!(e.contains("empty"), "{e}");
    }

    #[test]
    fn load_rejects_corrupt_and_inconsistent_records() {
        let h = chain(8);
        let cfg = config();
        let line = done_line(&h);
        // Truncated record.
        let text = format!("{}\n{}\n", cfg.header_line(), &line[..line.len() - 10]);
        let e = load(&text, &cfg, &h).expect_err("truncated");
        assert!(e.contains("checkpoint record 0"), "{e}");
        // Stored cut disagreeing with the assignment.
        let lied = line.replace("\"cut\":1,", "\"cut\":7,");
        assert_ne!(line, lied, "fixture cut changed; update the test");
        let text = format!("{}\n{lied}\n", cfg.header_line());
        let e = load(&text, &cfg, &h).expect_err("cut lie");
        assert!(e.contains("disagrees"), "{e}");
        // Duplicate and out-of-range starts.
        let text = format!("{}\n{line}\n{line}\n", cfg.header_line(), line = line);
        let e = load(&text, &cfg, &h).expect_err("duplicate");
        assert!(e.contains("twice"), "{e}");
        let mut small = cfg.clone();
        small.runs = 1;
        let text = format!("{}\n{line}\n", small.header_line());
        let e = load(&text, &small, &h).expect_err("out of range");
        assert!(e.contains("out of range"), "{e}");
    }

    #[test]
    fn writer_persists_header_then_records_atomically() {
        let h = chain(8);
        let cfg = config();
        let path = std::env::temp_dir().join(format!(
            "mlpart-checkpoint-test-{}.jsonl",
            std::process::id()
        ));
        let path_s = path.to_str().expect("utf8 temp path");
        let w =
            CheckpointWriter::create(path_s, cfg.header_line(), BTreeMap::new()).expect("creates");
        // Header-only file is already a loadable (empty) checkpoint.
        let text = std::fs::read_to_string(&path).expect("written");
        assert_eq!(load(&text, &cfg, &h).expect("loads").resume.done.len(), 0);
        let value: StartValue = Ok(outcome(&h));
        w.record(&StartDone {
            start: 1,
            attempts: 1,
            outcome: Ok(&value),
            retries: &[],
            trace: &StartContribution::default(),
        });
        assert!(w.error().is_none());
        let text = std::fs::read_to_string(&path).expect("written");
        let loaded = load(&text, &cfg, &h).expect("loads");
        assert_eq!(loaded.resume.done.len(), 1);
        assert_eq!(loaded.resume.done[0].start, 1);
        let _ = std::fs::remove_file(&path);

        // A hostile path latches an error instead of panicking a worker.
        let bad = CheckpointWriter::create(
            "/nonexistent-dir/ckpt.jsonl",
            cfg.header_line(),
            BTreeMap::new(),
        );
        assert!(bad.is_err());
    }

    #[test]
    fn header_excludes_threads_and_pins_everything_normative() {
        let cfg = config();
        let line = cfg.header_line();
        assert!(line.starts_with("{\"schema\":\"mlpart-checkpoint-v1\""));
        assert!(!line.contains("threads"), "threads must not be identity");
        assert!(line.contains(&format!("\"seed\":{}", u64::MAX - 1)));
        for key in [
            "circuit",
            "algo",
            "\"k\":",
            "epsilon",
            "fixed",
            "ratio",
            "threshold",
            "runs",
            "retries",
            "degraded_passes",
            "max_moves",
            "max_passes",
            "max_levels",
            "deadline_secs",
            "traced",
        ] {
            assert!(line.contains(key), "header must pin {key}: {line}");
        }
    }
}
