//! `mlpart` — a from-scratch Rust reproduction of *Multilevel Circuit
//! Partitioning* (Alpert, Huang, Kahng — DAC 1997).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`hypergraph`] — netlist hypergraphs, partitions, balance, metrics, I/O;
//! * [`gen`] — synthetic benchmark circuits (the Table I suite);
//! * [`fm`] — FM/CLIP iterative engines with LIFO/FIFO/Random buckets;
//! * [`cluster`] — `Match` coarsening, `Induce`, `Project`, rebalancing;
//! * [`core`] — the ML multilevel algorithm (bipartitioning + quadrisection);
//! * [`exec`] — deterministic parallel execution of independent starts,
//!   including supervised retries and resumable batches;
//! * [`checkpoint`] — the `mlpart-checkpoint-v1` on-disk format behind
//!   `mlpart --checkpoint/--resume`;
//! * [`kway`] — Sanchis-style k-way FM without lookahead;
//! * [`lsmc`] — the Large-Step Markov Chain baseline;
//! * [`place`] — the GORDIAN-analogue quadratic placer;
//! * `obs` (feature-gated) — deterministic structured tracing, metrics,
//!   and run-report exporters behind `MLPART_TRACE=1`;
//! * `fault` (feature-gated) — deterministic fault injection (panics and
//!   budget exhaustion at named sites) behind `MLPART_FAULTS`.
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Examples
//!
//! Partition a synthetic benchmark with the paper's best configuration
//! (`ML_C`, `R = 0.5`):
//!
//! ```
//! use mlpart::{ml_bipartition, MlConfig};
//! use mlpart::gen::suite;
//! use mlpart::hypergraph::rng::seeded_rng;
//!
//! let circuit = suite::by_name("balu").expect("in suite");
//! let h = circuit.generate(42);
//! let mut rng = seeded_rng(0);
//! let (partition, result) = ml_bipartition(&h, &MlConfig::clip().with_ratio(0.5), &mut rng);
//! assert_eq!(partition.k(), 2);
//! assert!(result.cut > 0);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;

pub use mlpart_cluster as cluster;
pub use mlpart_core as core;
pub use mlpart_exec as exec;
/// Deterministic fault injection: named panic/exhaustion sites behind
/// `MLPART_FAULTS`. Present only with the `fault` feature.
#[cfg(feature = "fault")]
pub use mlpart_fault as fault;
pub use mlpart_fm as fm;
pub use mlpart_gen as gen;
pub use mlpart_hypergraph as hypergraph;
pub use mlpart_kway as kway;
pub use mlpart_lsmc as lsmc;
/// Structured observability: spans, counters, trace/report exporters.
/// Present only with the `obs` feature.
#[cfg(feature = "obs")]
pub use mlpart_obs as obs;
pub use mlpart_place as place;

pub use mlpart_core::{
    ml_bipartition, ml_bipartition_budgeted_in, ml_bipartition_constrained,
    ml_bipartition_constrained_budgeted_in, ml_bipartition_constrained_in, ml_bipartition_in,
    ml_kway, ml_kway_budgeted_in, ml_kway_constrained, ml_kway_constrained_budgeted_in,
    ml_kway_constrained_in, ml_kway_in, ml_quadrisection, preflight, preflight_constrained,
    recursive_ml_partition, recursive_ml_partition_budgeted_in, Budget, BudgetLimit, BudgetMeter,
    LevelStats, MlConfig, MlKwayConfig, PreflightError, Truncation,
};
pub use mlpart_exec::{
    run_supervised, Attempt, BatchResult, ExecError, PriorStart, ResumeState, RetryPolicy,
    RetryRecord, RunOutcome, Sink, StartDone, StartFailure, SupervisedBatch, ATTEMPT_STRIDE,
};
pub use mlpart_fm::{
    fm_partition, repair_to_feasible, BucketPolicy, Engine, FmConfig, PassStats, RefineWorkspace,
    RepairRecord,
};
pub use mlpart_hypergraph::{
    adapted_epsilon, BipartBalance, Constraints, ConstraintsError, Hypergraph, HypergraphBuilder,
    KwayBalance, ModuleId, NetId, PartBounds, Partition, DEFAULT_EPSILON,
};
