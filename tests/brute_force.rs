//! Cross-validation against exhaustive search: on tiny netlists the true
//! balanced min-cut can be enumerated, so the heuristics' output can be
//! checked against ground truth rather than against each other.

use mlpart::gen::simple::{chain, ring_of_cliques};
use mlpart::hypergraph::rng::{seeded_rng, MlRng};
use mlpart::hypergraph::{metrics, BipartBalance, Hypergraph, HypergraphBuilder, Partition};
use mlpart::{fm_partition, ml_bipartition, FmConfig, MlConfig};
use rand::Rng;

/// Exhaustive balanced min-cut over all 2^n assignments (n ≤ ~16).
fn brute_force_min_cut(h: &Hypergraph, balance: &BipartBalance) -> u64 {
    let n = h.num_modules();
    assert!(n <= 16, "exhaustive search only for tiny netlists");
    let mut best = u64::MAX;
    for mask in 0u32..(1 << n) {
        let assignment: Vec<u32> = (0..n).map(|i| (mask >> i) & 1).collect();
        let p = Partition::from_assignment(h, 2, assignment).expect("valid");
        if !balance.is_feasible(p.part_area(0)) {
            continue;
        }
        best = best.min(metrics::cut(h, &p));
    }
    best
}

fn random_netlist(n: usize, nets: usize, rng: &mut MlRng) -> Hypergraph {
    let mut b = HypergraphBuilder::with_unit_areas(n);
    for _ in 0..nets {
        let size = 2 + rng.gen_range(0..2usize);
        let mut pins = Vec::new();
        while pins.len() < size {
            let v = rng.gen_range(0..n);
            if !pins.contains(&v) {
                pins.push(v);
            }
        }
        b.add_net(pins).expect("in range");
    }
    b.build().expect("valid")
}

fn heuristic_best<F>(tries: u64, seed_base: u64, mut run: F) -> u64
where
    F: FnMut(&mut MlRng) -> u64,
{
    (0..tries)
        .map(|s| {
            let mut rng = seeded_rng(seed_base + s);
            run(&mut rng)
        })
        .min()
        .expect("tries")
}

#[test]
fn fm_reaches_optimum_on_random_tiny_netlists() {
    let cfg = FmConfig::default();
    for instance in 0..20u64 {
        let mut gen_rng = seeded_rng(1000 + instance);
        let h = random_netlist(12, 18, &mut gen_rng);
        let balance = BipartBalance::new(&h, cfg.balance_r);
        let optimal = brute_force_min_cut(&h, &balance);
        let found = heuristic_best(30, 5000 + instance * 100, |rng| {
            fm_partition(&h, None, &cfg, rng).1.cut
        });
        assert!(
            found >= optimal,
            "instance {instance}: heuristic {found} below optimum {optimal}?!"
        );
        assert!(
            found <= optimal + 1,
            "instance {instance}: 30-start FM found {found}, optimum {optimal}"
        );
    }
}

#[test]
fn ml_reaches_optimum_on_random_tiny_netlists() {
    let cfg = MlConfig::clip().with_threshold(6);
    for instance in 0..12u64 {
        let mut gen_rng = seeded_rng(2000 + instance);
        let h = random_netlist(14, 22, &mut gen_rng);
        let balance = BipartBalance::new(&h, cfg.fm.balance_r);
        let optimal = brute_force_min_cut(&h, &balance);
        let found = heuristic_best(30, 9000 + instance * 100, |rng| {
            ml_bipartition(&h, &cfg, rng).1.cut
        });
        assert!(found >= optimal, "instance {instance}: below optimum?!");
        assert!(
            found <= optimal + 1,
            "instance {instance}: 30-start ML found {found}, optimum {optimal}"
        );
    }
}

#[test]
fn known_optima_on_structured_netlists() {
    // Chain of 12: optimal bisection cut 1.
    let h = chain(12);
    let balance = BipartBalance::new(&h, 0.1);
    assert_eq!(brute_force_min_cut(&h, &balance), 1);
    let found = heuristic_best(10, 1, |rng| {
        fm_partition(&h, None, &FmConfig::default(), rng).1.cut
    });
    assert_eq!(found, 1);

    // Ring of 2 cliques of 7: the two bridges form the optimal 2-cut.
    let h = ring_of_cliques(2, 7);
    let balance = BipartBalance::new(&h, 0.1);
    assert_eq!(brute_force_min_cut(&h, &balance), 2);
    let found = heuristic_best(10, 2, |rng| {
        ml_bipartition(&h, &MlConfig::default(), rng).1.cut
    });
    assert_eq!(found, 2);
}

#[test]
fn weighted_optimum_respected() {
    // A 2x5 ladder with one heavy rung: the optimum avoids the heavy net.
    let mut b = HypergraphBuilder::with_unit_areas(10);
    for i in 0..4usize {
        b.add_net([i, i + 1]).expect("in range");
        b.add_net([5 + i, 5 + i + 1]).expect("in range");
    }
    for i in 0..5usize {
        let w = if i == 2 { 10 } else { 1 };
        b.add_weighted_net([i, 5 + i], w).expect("in range");
    }
    let h = b.build().expect("valid");
    let balance = BipartBalance::new(&h, 0.1);
    let optimal = brute_force_min_cut(&h, &balance);
    let found = heuristic_best(20, 3, |rng| {
        fm_partition(&h, None, &FmConfig::default(), rng).1.cut
    });
    assert_eq!(found, optimal);
    assert!(optimal < 10, "optimum must avoid the weight-10 rung");
}
