//! The checked-in `schemas/checkpoint-v1.schema.json` must accept what
//! `mlpart::checkpoint` actually writes. A checkpoint is JSONL, so each
//! line validates against the named subschema for its role (`header`,
//! `record`) and an ok record's nested pieces against `outcome_ok`,
//! `truncation`, and `repair`; the validator subset has no oneOf, so the
//! test navigates the subschemas directly.
//!
//! Needs the `obs` feature: the validator lives in `mlpart-obs`.
#![cfg(feature = "obs")]

use mlpart::checkpoint::{record_line, CheckpointConfig, StartOutcome, StartValue};
use mlpart::exec::supervise::StartContribution;
use mlpart::hypergraph::metrics::cut;
use mlpart::obs::{json, schema};
use mlpart::{
    Budget, BudgetLimit, Hypergraph, HypergraphBuilder, Partition, RepairRecord, StartDone,
    StartFailure, Truncation,
};

const SCHEMA: &str = include_str!("../schemas/checkpoint-v1.schema.json");

fn subschema<'a>(root: &'a json::Json, name: &str) -> &'a json::Json {
    root.get("properties")
        .and_then(|p| p.get(name))
        .unwrap_or_else(|| panic!("schema has no {name} subschema"))
}

fn chain(n: usize) -> Hypergraph {
    let mut b = HypergraphBuilder::with_unit_areas(n);
    for i in 0..n - 1 {
        b.add_net([i, i + 1]).expect("valid net");
    }
    b.build().expect("valid hypergraph")
}

fn config() -> CheckpointConfig {
    CheckpointConfig {
        circuit: "syn-balu".to_string(),
        algo: "ml-c".to_string(),
        k: 2,
        epsilon: Some(0.1),
        fixed: Some("cells.fix".to_string()),
        ratio: 0.5,
        threshold: 35,
        runs: 4,
        seed: 11,
        retries: 3,
        degraded_passes: Some(2),
        budget: Budget {
            max_passes: Some(9),
            ..Budget::default()
        },
        traced: true,
    }
}

fn ok_line(h: &Hypergraph) -> String {
    let parts = (0..h.num_modules())
        .map(|i| u32::from(i >= h.num_modules() / 2))
        .collect();
    let partition = Partition::from_assignment(h, 2, parts).expect("valid");
    let cut_now = cut(h, &partition);
    let value: StartValue = Ok(StartOutcome {
        partition,
        cut: cut_now,
        level_stats: Vec::new(),
        truncation: Some(Truncation {
            limit: BudgetLimit::Passes,
            site: "pass",
            level: Some(1),
            pass: Some(3),
        }),
        repair: Some(RepairRecord {
            moves: 2,
            cut_before: cut_now + 4,
            cut_after: cut_now,
            feasible: true,
        }),
    });
    record_line(&StartDone {
        start: 1,
        attempts: 2,
        outcome: Ok(&value),
        retries: &[mlpart::RetryRecord {
            start: 1,
            attempt: 0,
            message: "injected fault: panic@attempt:8".to_string(),
            phase: Some("fm_refine".to_string()),
        }],
        trace: &StartContribution::default(),
    })
}

#[test]
fn header_and_records_match_the_checked_in_schema() {
    let root = json::parse(SCHEMA).expect("schema parses");
    let h = chain(8);

    let header = json::parse(&config().header_line()).expect("header parses");
    let errors = schema::validate(subschema(&root, "header"), &header);
    assert!(errors.is_empty(), "header violations: {errors:?}");

    // One record per outcome variant; each validates as a record and its
    // outcome validates against the matching named shape.
    let failure = StartFailure {
        start: 2,
        message: "boom".to_string(),
        phase: None,
    };
    let err_value: StartValue = Err("unknown algorithm \"x\"".to_string());
    let lines = [
        (ok_line(&h), "outcome_ok"),
        (
            record_line(&StartDone {
                start: 0,
                attempts: 1,
                outcome: Ok(&err_value),
                retries: &[],
                trace: &StartContribution::default(),
            }),
            "outcome_err",
        ),
        (
            record_line(&StartDone::<StartValue> {
                start: 2,
                attempts: 3,
                outcome: Err(&failure),
                retries: &[],
                trace: &StartContribution::default(),
            }),
            "outcome_failed",
        ),
    ];
    for (line, outcome_shape) in &lines {
        let doc = json::parse(line).expect("record parses");
        let errors = schema::validate(subschema(&root, "record"), &doc);
        assert!(
            errors.is_empty(),
            "{outcome_shape} record violations: {errors:?}"
        );
        let outcome = doc.get("outcome").expect("record has outcome");
        let errors = schema::validate(subschema(&root, outcome_shape), outcome);
        assert!(errors.is_empty(), "{outcome_shape} violations: {errors:?}");
    }

    // The ok outcome's nested truncation and repair match their shapes.
    let doc = json::parse(&lines[0].0).expect("record parses");
    let ok = doc
        .get("outcome")
        .and_then(|o| o.get("ok"))
        .expect("ok outcome");
    for name in ["truncation", "repair"] {
        let nested = ok.get(name).expect(name);
        let errors = schema::validate(subschema(&root, name), nested);
        assert!(errors.is_empty(), "{name} violations: {errors:?}");
    }
}

/// The subschemas reject broken lines — they are not accept-everything
/// stubs.
#[test]
fn schema_rejects_malformed_lines() {
    let root = json::parse(SCHEMA).expect("schema parses");
    let bad_header =
        json::parse(r#"{"schema":"mlpart-checkpoint-v0","config":{}}"#).expect("parses");
    assert!(
        !schema::validate(subschema(&root, "header"), &bad_header).is_empty(),
        "wrong version and empty config must fail"
    );
    let bad_record =
        json::parse(r#"{"start":0,"attempts":1,"outcome":{"err":"x"}}"#).expect("parses");
    assert!(
        !schema::validate(subschema(&root, "record"), &bad_record).is_empty(),
        "missing retries/trace must fail"
    );
    let bad_ok = json::parse(r#"{"ok":{"cut":3,"parts":[],"truncation":null,"repair":null}}"#)
        .expect("parses");
    assert!(
        !schema::validate(subschema(&root, "outcome_ok"), &bad_ok).is_empty(),
        "empty parts must fail minItems"
    );
    let bad_truncation =
        json::parse(r#"{"limit":"fuel","site":"pass","level":null,"pass":null}"#).expect("parses");
    assert!(
        !schema::validate(subschema(&root, "truncation"), &bad_truncation).is_empty(),
        "unknown limit must fail the enum"
    );
}
