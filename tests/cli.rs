//! End-to-end tests of the `mlpart` command-line binary: real process
//! invocations over temp files, exercising netlist input, algorithm
//! selection, partition output, and error paths.

use std::process::Command;

fn mlpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mlpart"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mlpart-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn partitions_a_synthetic_circuit() {
    let out = mlpart()
        .args(["syn-balu", "--algo", "ml-c", "--runs", "3", "--seed", "5"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ml-c x3 runs: min"), "stdout: {stdout}");
}

#[test]
fn partitions_hgr_file_and_writes_part_file() {
    let hgr = temp_path("in.hgr");
    let part = temp_path("out.part");
    std::fs::write(&hgr, "3 6\n1 2 3\n4 5 6\n3 4\n").expect("write temp netlist");
    let out = mlpart()
        .arg(hgr.to_str().expect("utf8 path"))
        .args(["--algo", "fm", "--runs", "2"])
        .args(["--output", part.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&part).expect("partition written");
    let parts: Vec<&str> = written.lines().collect();
    assert_eq!(parts.len(), 6, "one part id per module");
    assert!(parts.iter().all(|l| l == &"0" || l == &"1"));
    let _ = std::fs::remove_file(&hgr);
    let _ = std::fs::remove_file(&part);
}

#[test]
fn quadrisection_flag_works() {
    let out = mlpart()
        .args(["syn-balu", "--algo", "ml-f", "--k", "4", "--runs", "2"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn thread_count_does_not_change_results() {
    // The executor promises bit-identical output at every thread count;
    // check it end-to-end through the binary, including the written
    // partition file. Only the timing parenthetical may differ.
    let report = |threads: &str, part: &std::path::Path| {
        let out = mlpart()
            .args(["syn-balu", "--algo", "ml-c", "--runs", "4", "--seed", "7"])
            .args(["--threads", threads])
            .args(["--output", part.to_str().expect("utf8 path")])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let stats = stdout
            .split(" (")
            .next()
            .expect("report line has a timing parenthetical")
            .to_owned();
        let partition = std::fs::read_to_string(part).expect("partition written");
        (stats, partition)
    };
    let part1 = temp_path("t1.part");
    let part4 = temp_path("t4.part");
    let (stats1, partition1) = report("1", &part1);
    let (stats4, partition4) = report("4", &part4);
    assert_eq!(
        stats1, stats4,
        "cut statistics must not depend on --threads"
    );
    assert_eq!(
        partition1, partition4,
        "best partition must not depend on --threads"
    );
    assert!(stats1.contains("ml-c x4 runs: min"), "stats: {stats1}");
    let _ = std::fs::remove_file(&part1);
    let _ = std::fs::remove_file(&part4);
}

#[test]
fn bad_usage_exits_nonzero() {
    // No input at all.
    let out = mlpart().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    // Unknown algorithm.
    let out = mlpart()
        .args(["syn-balu", "--algo", "quantum"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    // Missing file.
    let out = mlpart()
        .arg("no-such-file.hgr")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot open"), "stderr: {err}");
}
