//! End-to-end tests of the `mlpart` command-line binary: real process
//! invocations over temp files, exercising netlist input, algorithm
//! selection, partition output, and error paths.

use std::process::Command;

fn mlpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mlpart"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mlpart-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn partitions_a_synthetic_circuit() {
    let out = mlpart()
        .args(["syn-balu", "--algo", "ml-c", "--runs", "3", "--seed", "5"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ml-c x3 runs: min"), "stdout: {stdout}");
}

#[test]
fn partitions_hgr_file_and_writes_part_file() {
    let hgr = temp_path("in.hgr");
    let part = temp_path("out.part");
    std::fs::write(&hgr, "3 6\n1 2 3\n4 5 6\n3 4\n").expect("write temp netlist");
    let out = mlpart()
        .arg(hgr.to_str().expect("utf8 path"))
        .args(["--algo", "fm", "--runs", "2"])
        .args(["--output", part.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&part).expect("partition written");
    let parts: Vec<&str> = written.lines().collect();
    assert_eq!(parts.len(), 6, "one part id per module");
    assert!(parts.iter().all(|l| l == &"0" || l == &"1"));
    let _ = std::fs::remove_file(&hgr);
    let _ = std::fs::remove_file(&part);
}

#[test]
fn quadrisection_flag_works() {
    let out = mlpart()
        .args(["syn-balu", "--algo", "ml-f", "--k", "4", "--runs", "2"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn thread_count_does_not_change_results() {
    // The executor promises bit-identical output at every thread count;
    // check it end-to-end through the binary, including the written
    // partition file. Only the timing parenthetical may differ.
    let report = |threads: &str, part: &std::path::Path| {
        let out = mlpart()
            .args(["syn-balu", "--algo", "ml-c", "--runs", "4", "--seed", "7"])
            .args(["--threads", threads])
            .args(["--output", part.to_str().expect("utf8 path")])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let stats = stdout
            .split(" (")
            .next()
            .expect("report line has a timing parenthetical")
            .to_owned();
        let partition = std::fs::read_to_string(part).expect("partition written");
        (stats, partition)
    };
    let part1 = temp_path("t1.part");
    let part4 = temp_path("t4.part");
    let (stats1, partition1) = report("1", &part1);
    let (stats4, partition4) = report("4", &part4);
    assert_eq!(
        stats1, stats4,
        "cut statistics must not depend on --threads"
    );
    assert_eq!(
        partition1, partition4,
        "best partition must not depend on --threads"
    );
    assert!(stats1.contains("ml-c x4 runs: min"), "stats: {stats1}");
    let _ = std::fs::remove_file(&part1);
    let _ = std::fs::remove_file(&part4);
}

/// Without the `obs` feature the tracing flags fail fast with a pointer to
/// the right build invocation instead of silently writing nothing.
#[cfg(not(feature = "obs"))]
#[test]
fn tracing_flags_require_obs_feature() {
    let out = mlpart()
        .args(["syn-balu", "--runs", "1", "--trace-out", "x.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("obs"), "stderr should name the feature: {err}");
}

/// End-to-end tracing contract (needs `--features obs`): one fixed-seed
/// invocation writes a Chrome trace, a run report, and a folded-stack file;
/// the two JSON documents validate against the checked-in schemas, the
/// report covers every level and pass of the multilevel run, and the trace
/// *content* (timestamps stripped) is byte-identical across repeats and
/// thread counts — folded frame structure included.
#[cfg(feature = "obs")]
#[test]
fn trace_and_report_outputs_are_valid_and_deterministic() {
    use mlpart::obs::{json, schema, strip_folded, strip_timing};

    let run = |threads: &str, tag: &str| {
        let trace = temp_path(&format!("trace-{tag}.json"));
        let report = temp_path(&format!("report-{tag}.json"));
        let folded = temp_path(&format!("stacks-{tag}.folded"));
        let out = mlpart()
            .args(["syn-balu", "--algo", "ml-c", "--runs", "3", "--seed", "7"])
            .args(["--threads", threads])
            .args(["--trace-out", trace.to_str().expect("utf8 path")])
            .args(["--report-out", report.to_str().expect("utf8 path")])
            .args(["--folded-out", folded.to_str().expect("utf8 path")])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let trace_text = std::fs::read_to_string(&trace).expect("trace written");
        let report_text = std::fs::read_to_string(&report).expect("report written");
        let folded_text = std::fs::read_to_string(&folded).expect("folded written");
        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&report);
        let _ = std::fs::remove_file(&folded);
        (trace_text, report_text, folded_text)
    };

    let (trace1, report1, folded1) = run("1", "a");

    // The folded export is flamegraph.pl input: `frame;frame;... value`
    // lines with semicolon-nested stacks rooted at the CLI's run span.
    assert!(folded1.contains(';'), "folded stacks nest: {folded1}");
    for line in folded1.lines() {
        assert!(
            line.rsplit_once(' ')
                .is_some_and(|(stack, v)| !stack.is_empty() && v.parse::<u64>().is_ok()),
            "folded line is `stack value`: {line:?}"
        );
    }

    // Both documents validate against the schemas CI ships.
    let chrome_schema = json::parse(include_str!("../schemas/chrome-trace.schema.json"))
        .expect("chrome schema parses");
    let report_schema = json::parse(include_str!("../schemas/run-report.schema.json"))
        .expect("report schema parses");
    let trace_doc = json::parse(&trace1).expect("trace is valid JSON");
    let report_doc = json::parse(&report1).expect("report is valid JSON");
    assert_eq!(
        schema::validate(&chrome_schema, &trace_doc),
        Vec::<String>::new()
    );
    assert_eq!(
        schema::validate(&report_schema, &report_doc),
        Vec::<String>::new()
    );

    // The report covers the whole multilevel run: one start span per run,
    // per-level spans, and per-pass counters.
    assert_eq!(report1.matches("\"name\":\"start\"").count(), 3);
    assert!(
        report1.contains("\"name\":\"level\""),
        "level spans present"
    );
    assert!(
        report1.contains("\"name\":\"fm_pass\""),
        "pass counters present"
    );
    assert!(
        report1.contains("\"name\":\"coarsen\""),
        "coarsening covered"
    );
    assert!(
        report1.contains("\"name\":\"initial\""),
        "initial tries covered"
    );

    // Content determinism: repeats and thread counts agree once the timing
    // fields are zeroed (folded stacks: once sample values are zeroed).
    let (trace1b, report1b, folded1b) = run("1", "b");
    assert_eq!(strip_timing(&trace1), strip_timing(&trace1b), "repeat run");
    assert_eq!(
        strip_timing(&report1),
        strip_timing(&report1b),
        "repeat run"
    );
    assert_eq!(
        strip_folded(&folded1),
        strip_folded(&folded1b),
        "repeat run"
    );
    let (trace4, report4, folded4) = run("4", "c");
    assert_eq!(strip_timing(&trace1), strip_timing(&trace4), "threads=4");
    assert_eq!(strip_folded(&folded1), strip_folded(&folded4), "threads=4");
    // The report's meta records the thread count itself — the one field
    // that legitimately differs — so normalize it before comparing.
    let normalize = |s: &str| strip_timing(s).replace("\"threads\":4", "\"threads\":1");
    assert_eq!(normalize(&report1), normalize(&report4), "threads=4");
}

/// `--help` is a successful command (exit 0) and documents the full
/// exit-code contract so scripts can rely on it.
#[test]
fn help_exits_zero_and_documents_exit_codes() {
    let out = mlpart().arg("--help").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "exit codes:",
        "0  success",
        "1  execution failure",
        "2  invalid input",
        "3  budget truncated",
    ] {
        assert!(
            stdout.contains(needle),
            "--help missing {needle:?}: {stdout}"
        );
    }
}

/// Exit-code contract, code 2: malformed netlists are invalid input, not
/// crashes or generic failures.
#[test]
fn malformed_netlist_exits_two() {
    let hgr = temp_path("garbage.hgr");
    std::fs::write(&hgr, "2 3\n1 99\n2 3\n").expect("write temp netlist");
    let out = mlpart()
        .arg(hgr.to_str().expect("utf8 path"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot parse"), "stderr: {err}");
    let _ = std::fs::remove_file(&hgr);
}

/// Exit-code contract, code 2: a structurally valid netlist that cannot
/// satisfy the requested partitioning (here k exceeds the module count)
/// is rejected by pre-flight before any start runs.
#[test]
fn infeasible_input_exits_two() {
    let hgr = temp_path("tiny.hgr");
    std::fs::write(&hgr, "1 2\n1 2\n").expect("write temp netlist");
    let out = mlpart()
        .arg(hgr.to_str().expect("utf8 path"))
        .args(["--algo", "ml-c", "--k", "4"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("infeasible input"), "stderr: {err}");
    let _ = std::fs::remove_file(&hgr);
}

/// Exit-code contract, code 3: a budget-truncated run still prints the cut
/// statistics and writes a complete, valid partition file — the exit code
/// is the only signal that the result is partial.
#[test]
fn budget_truncation_exits_three_and_still_writes_partition() {
    let part = temp_path("truncated.part");
    let out = mlpart()
        .args(["syn-balu", "--algo", "ml-c", "--runs", "2", "--seed", "3"])
        .args(["--max-passes", "1"])
        .args(["--output", part.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ml-c x2 runs: min"), "stdout: {stdout}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("budget-truncated"), "stderr: {err}");
    let written = std::fs::read_to_string(&part).expect("partition still written");
    let parts: Vec<&str> = written.lines().collect();
    assert_eq!(parts.len(), 801, "one part id per syn-balu module");
    assert!(parts.iter().all(|l| l == &"0" || l == &"1"));
    let _ = std::fs::remove_file(&part);
}

/// Budget flags do not work with the flat LSMC baseline — rejecting the
/// combination is invalid input, not a silent no-op.
#[test]
fn budget_with_lsmc_exits_two() {
    let out = mlpart()
        .args(["syn-balu", "--algo", "lsmc", "--max-moves", "10"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

/// End-to-end panic isolation (needs `--features fault`): an injected
/// per-start panic is reported on stderr, the start is excluded, and the
/// surviving starts still produce a successful result.
#[cfg(feature = "fault")]
#[test]
fn injected_start_panic_is_isolated_end_to_end() {
    let out = mlpart()
        .args(["syn-balu", "--algo", "ml-c", "--runs", "3", "--seed", "5"])
        .env("MLPART_FAULTS", "panic@start:1")
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("start 1 panicked") && err.contains("excluded"),
        "stderr: {err}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ml-c x2 runs: min"), "stdout: {stdout}");
}

/// End-to-end all-starts-failed (needs `--features fault`): when every
/// start panics there is no result and the exit code is 1, not a crash.
#[cfg(feature = "fault")]
#[test]
fn all_starts_failed_exits_one() {
    let out = mlpart()
        .args(["syn-balu", "--algo", "ml-c", "--runs", "2", "--seed", "5"])
        .env("MLPART_FAULTS", "panic@start:0|1")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("every start failed"), "stderr: {err}");
}

/// The acceptance-criterion invocation: `--k 8 --epsilon 0.05 --fixed`
/// produces a valid 8-way partition that honors every pin in the `.fix`
/// file, end to end through the binary and the written partition file.
#[test]
fn constrained_k8_run_honors_fix_file() {
    let fix = temp_path("cells8.fix");
    let part = temp_path("k8.part");
    // Pin module 0 to part 7, module 3 to part 0, module 10 to part 5;
    // everything else free. syn-balu has 801 modules.
    let mut fix_lines = vec!["-1".to_owned(); 801];
    fix_lines[0] = "7".to_owned();
    fix_lines[3] = "0".to_owned();
    fix_lines[10] = "5".to_owned();
    std::fs::write(&fix, fix_lines.join("\n") + "\n").expect("write fix file");
    let out = mlpart()
        .args(["syn-balu", "--algo", "ml-c", "--runs", "2", "--seed", "9"])
        .args(["--k", "8", "--epsilon", "0.05"])
        .args(["--fixed", fix.to_str().expect("utf8 path")])
        .args(["--output", part.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&part).expect("partition written");
    let ids: Vec<u32> = written
        .lines()
        .map(|l| l.parse().expect("part id"))
        .collect();
    assert_eq!(ids.len(), 801, "one part id per module");
    assert!(ids.iter().all(|&p| p < 8), "all ids below k");
    assert_eq!(ids[0], 7, "pin to part 7 honored");
    assert_eq!(ids[3], 0, "pin to part 0 honored");
    assert_eq!(ids[10], 5, "pin to part 5 honored");
    // Every part is populated: a degenerate empty part would mean the
    // recursive splitter lost a region.
    for p in 0..8u32 {
        assert!(ids.contains(&p), "part {p} is empty");
    }
    let _ = std::fs::remove_file(&fix);
    let _ = std::fs::remove_file(&part);
}

/// Constrained runs are thread-count invariant end to end, pins included.
#[test]
fn constrained_run_is_thread_count_invariant() {
    let fix = temp_path("pins.fix");
    let mut fix_lines = vec!["-1".to_owned(); 801];
    fix_lines[0] = "1".to_owned();
    fix_lines[17] = "0".to_owned();
    std::fs::write(&fix, fix_lines.join("\n") + "\n").expect("write fix file");
    let report = |threads: &str, tag: &str| {
        let part = temp_path(&format!("cfix-{tag}.part"));
        let out = mlpart()
            .args(["syn-balu", "--algo", "ml-c", "--runs", "3", "--seed", "11"])
            .args(["--fixed", fix.to_str().expect("utf8 path")])
            .args(["--threads", threads])
            .args(["--output", part.to_str().expect("utf8 path")])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let stats = stdout.split(" (").next().expect("report line").to_owned();
        let partition = std::fs::read_to_string(&part).expect("partition written");
        let _ = std::fs::remove_file(&part);
        (stats, partition)
    };
    let (stats1, part1) = report("1", "a");
    let (stats4, part4) = report("4", "b");
    assert_eq!(stats1, stats4, "cut stats must not depend on --threads");
    assert_eq!(part1, part4, "partition must not depend on --threads");
    let ids: Vec<&str> = part1.lines().collect();
    assert_eq!(ids[0], "1");
    assert_eq!(ids[17], "0");
    let _ = std::fs::remove_file(&fix);
}

/// Exit-code contract, code 2: pins that overcommit a part's capacity are
/// an infeasible instance, rejected by pre-flight before any start runs.
#[test]
fn overcommitted_fix_file_exits_two() {
    let hgr = temp_path("even.hgr");
    let fix = temp_path("overcommit.fix");
    // 8 unit modules, tight ε = 0.05 → each side holds at most 5; pinning
    // 6 modules to part 0 cannot fit.
    std::fs::write(&hgr, "2 8\n1 2\n7 8\n").expect("write temp netlist");
    std::fs::write(&fix, "0\n0\n0\n0\n0\n0\n-1\n-1\n").expect("write fix file");
    let out = mlpart()
        .arg(hgr.to_str().expect("utf8 path"))
        .args(["--algo", "ml-c", "--epsilon", "0.05"])
        .args(["--fixed", fix.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("infeasible input"), "stderr: {err}");
    assert!(err.contains("fixed"), "stderr names the fixed area: {err}");
    let _ = std::fs::remove_file(&hgr);
    let _ = std::fs::remove_file(&fix);
}

/// Exit-code contract, code 2: a malformed `.fix` file (part id >= k) is
/// invalid input with a typed parse error, not a crash.
#[test]
fn malformed_fix_file_exits_two() {
    let hgr = temp_path("fixin.hgr");
    let fix = temp_path("bad.fix");
    std::fs::write(&hgr, "2 4\n1 2\n3 4\n").expect("write temp netlist");
    std::fs::write(&fix, "0\n5\n-1\n-1\n").expect("write fix file");
    let out = mlpart()
        .arg(hgr.to_str().expect("utf8 path"))
        .args(["--fixed", fix.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot parse"), "stderr: {err}");
    let _ = std::fs::remove_file(&hgr);
    let _ = std::fs::remove_file(&fix);
}

#[test]
fn bad_usage_exits_nonzero() {
    // No input at all.
    let out = mlpart().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    // Unknown algorithm.
    let out = mlpart()
        .args(["syn-balu", "--algo", "quantum"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    // Missing file.
    let out = mlpart()
        .arg("no-such-file.hgr")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot open"), "stderr: {err}");
}
