//! End-to-end integration tests spanning every crate: generate a benchmark,
//! run the full ML pipeline, and verify the invariants a downstream user
//! relies on.

use mlpart::cluster::{induce, match_clusters, project, MatchConfig};
use mlpart::gen::suite;
use mlpart::hypergraph::io::{read_hgr, write_hgr};
use mlpart::hypergraph::metrics;
use mlpart::hypergraph::rng::seeded_rng;
use mlpart::place::{gordian_quadrisection, PlacerConfig};
use mlpart::{
    fm_partition, ml_bipartition, ml_quadrisection, BipartBalance, FmConfig, KwayBalance, MlConfig,
    Partition,
};

#[test]
fn full_pipeline_on_suite_circuit() {
    let circuit = suite::by_name("primary1").expect("in suite");
    let h = circuit.generate(1);
    let cfg = MlConfig::clip().with_ratio(0.5);
    let balance = BipartBalance::new(&h, cfg.fm.balance_r);
    let mut rng = seeded_rng(11);
    let (p, r) = ml_bipartition(&h, &cfg, &mut rng);
    assert!(p.validate(&h));
    assert!(balance.is_partition_feasible(&p));
    assert_eq!(r.cut, metrics::cut(&h, &p));
    assert!(r.levels >= 3, "R=0.5 should build several levels");
    assert!(r.cut > 0, "connected circuit has nonzero cut");
    assert!(
        *r.level_sizes.last().expect("non-empty") <= cfg.coarsen_threshold,
        "coarsest level above T"
    );
}

#[test]
fn ml_beats_flat_fm_on_suite_circuit() {
    let circuit = suite::by_name("struct").expect("in suite");
    let h = circuit.generate(2);
    let runs = 5;
    let fm_best = (0..runs)
        .map(|s| {
            let mut rng = seeded_rng(100 + s);
            fm_partition(&h, None, &FmConfig::default(), &mut rng).1.cut
        })
        .min()
        .expect("runs");
    let ml_best = (0..runs)
        .map(|s| {
            let mut rng = seeded_rng(200 + s);
            ml_bipartition(&h, &MlConfig::clip(), &mut rng).1.cut
        })
        .min()
        .expect("runs");
    assert!(
        ml_best <= fm_best,
        "ML best {ml_best} should not lose to flat FM best {fm_best}"
    );
}

#[test]
fn manual_two_phase_equals_library_pieces() {
    // Build "two-phase FM" out of the public pieces (the pre-ML baseline the
    // paper describes): cluster once, induce, FM on coarse, project, FM.
    let circuit = suite::by_name("balu").expect("in suite");
    let h = circuit.generate(3);
    let mut rng = seeded_rng(7);
    let clustering = match_clusters(&h, &MatchConfig::default(), &mut rng);
    let coarse = induce(&h, &clustering).expect("clustering covers h");
    let (coarse_p, _) = fm_partition(&coarse, None, &FmConfig::default(), &mut rng);
    let projected = project(&h, &clustering, &coarse_p).expect("clustering covers h");
    let projected_cut = metrics::cut(&h, &projected);
    assert_eq!(
        projected_cut,
        metrics::cut(&coarse, &coarse_p),
        "projection preserves cut"
    );
    let (refined, r) = fm_partition(&h, Some(projected), &FmConfig::default(), &mut rng);
    assert!(r.cut <= projected_cut, "refinement never worsens");
    assert!(refined.validate(&h));
}

#[test]
fn quadrisection_pipeline_with_pads_and_placer() {
    let circuit = suite::by_name("balu").expect("in suite");
    let (h, pads) = circuit.generate_with_pads(4);
    // Placement-derived quadrisection.
    let (gp, placement) = gordian_quadrisection(&h, &pads, &PlacerConfig::default());
    assert!(gp.validate(&h));
    assert_eq!(gp.k(), 4);
    assert!(placement.hpwl(&h) > 0.0);
    let g_cut = metrics::cut(&h, &gp);
    // Multilevel quadrisection should be at least as good (best of 3).
    let ml_best = (0..3)
        .map(|s| {
            let mut rng = seeded_rng(300 + s);
            ml_quadrisection(&h, &[], &mut rng).1.cut
        })
        .min()
        .expect("runs");
    assert!(
        ml_best <= g_cut,
        "multilevel {ml_best} should not lose to placer {g_cut}"
    );
    let bal = KwayBalance::new(&h, 4, 0.1);
    let mut rng = seeded_rng(400);
    let (p, r) = ml_quadrisection(&h, &[], &mut rng);
    assert!(bal.is_partition_feasible(&p), "{:?}", p.part_areas());
    assert_eq!(r.cut, metrics::cut(&h, &p));
}

#[test]
fn netlist_io_roundtrip_preserves_partitioning_behaviour() {
    let circuit = suite::by_name("bm1").expect("in suite");
    let h = circuit.generate(5);
    let mut text = Vec::new();
    write_hgr(&h, &mut text).expect("serialize");
    let h2 = read_hgr(&text[..]).expect("parse");
    assert_eq!(h, h2);
    // Same seed on the identical netlist gives the identical result.
    let mut rng1 = seeded_rng(9);
    let mut rng2 = seeded_rng(9);
    let (p1, r1) = ml_bipartition(&h, &MlConfig::default(), &mut rng1);
    let (p2, r2) = ml_bipartition(&h2, &MlConfig::default(), &mut rng2);
    assert_eq!(p1.assignment(), p2.assignment());
    assert_eq!(r1.cut, r2.cut);
}

#[test]
fn whole_suite_generates_and_small_circuits_partition() {
    for c in suite::SUITE.iter().filter(|c| c.modules <= 1_000) {
        let h = c.generate(6);
        assert_eq!(h.num_modules(), c.modules, "{}", c.name);
        let mut rng = seeded_rng(1);
        let (p, r) = ml_bipartition(&h, &MlConfig::default(), &mut rng);
        assert!(p.validate(&h), "{}", c.name);
        assert!(r.cut > 0, "{} should be connected", c.name);
    }
}

#[test]
fn partition_types_interoperate_across_crates() {
    // A Partition built by hand flows through refinement and metrics.
    let circuit = suite::by_name("balu").expect("in suite");
    let h = circuit.generate(7);
    let n = h.num_modules();
    let p0 =
        Partition::from_assignment(&h, 2, (0..n).map(|i| (i % 2) as u32).collect()).expect("valid");
    let start = metrics::cut(&h, &p0);
    let mut rng = seeded_rng(3);
    let (p, r) = fm_partition(&h, Some(p0), &FmConfig::default(), &mut rng);
    assert!(r.cut < start, "interleaved start must improve");
    assert!(p.validate(&h));
}
