//! The paper's headline qualitative results, asserted as tests on small
//! synthetic circuits so `cargo test` itself validates the reproduction:
//!
//! * Table II: LIFO buckets beat FIFO buckets.
//! * Table III: CLIP beats FM on average.
//! * Table IV: multilevel beats flat iterative improvement.
//! * Tables V/VI: smaller matching ratio ⇒ more hierarchy levels, no
//!   quality loss.
//! * Table IX: multilevel quadrisection beats the placement-derived split.

use mlpart::gen::suite;
use mlpart::hypergraph::metrics;
use mlpart::hypergraph::rng::seeded_rng;
use mlpart::place::{gordian_quadrisection, PlacerConfig};
use mlpart::{
    fm_partition, ml_bipartition, ml_quadrisection, BucketPolicy, Engine, FmConfig, MlConfig,
};

const RUNS: u64 = 8;

fn avg_cut(h: &mlpart::Hypergraph, cfg: &FmConfig, seed_base: u64) -> f64 {
    (0..RUNS)
        .map(|s| {
            let mut rng = seeded_rng(seed_base + s);
            fm_partition(h, None, cfg, &mut rng).1.cut as f64
        })
        .sum::<f64>()
        / RUNS as f64
}

#[test]
fn table2_shape_lifo_beats_fifo() {
    let h = suite::by_name("primary1").expect("in suite").generate(42);
    let lifo = avg_cut(&h, &FmConfig::default(), 100);
    let fifo = avg_cut(
        &h,
        &FmConfig {
            policy: BucketPolicy::Fifo,
            ..FmConfig::default()
        },
        200,
    );
    assert!(
        lifo < fifo * 0.9,
        "LIFO avg {lifo:.1} should clearly beat FIFO avg {fifo:.1}"
    );
}

#[test]
fn table3_shape_clip_beats_fm() {
    let h = suite::by_name("primary2").expect("in suite").generate(42);
    let fm = avg_cut(&h, &FmConfig::default(), 300);
    let clip = avg_cut(
        &h,
        &FmConfig {
            engine: Engine::Clip,
            ..FmConfig::default()
        },
        400,
    );
    assert!(clip < fm, "CLIP avg {clip:.1} should beat FM avg {fm:.1}");
}

#[test]
fn table4_shape_multilevel_beats_flat() {
    let h = suite::by_name("primary2").expect("in suite").generate(42);
    let clip_avg = avg_cut(
        &h,
        &FmConfig {
            engine: Engine::Clip,
            ..FmConfig::default()
        },
        500,
    );
    let ml_avg = (0..RUNS)
        .map(|s| {
            let mut rng = seeded_rng(600 + s);
            ml_bipartition(&h, &MlConfig::clip(), &mut rng).1.cut as f64
        })
        .sum::<f64>()
        / RUNS as f64;
    assert!(
        ml_avg < clip_avg,
        "ML_C avg {ml_avg:.1} should beat flat CLIP avg {clip_avg:.1}"
    );
}

#[test]
fn table5_shape_matching_ratio_controls_levels() {
    let h = suite::by_name("primary2").expect("in suite").generate(42);
    let levels_at = |ratio: f64| {
        let mut rng = seeded_rng(1);
        ml_bipartition(&h, &MlConfig::default().with_ratio(ratio), &mut rng)
            .1
            .levels
    };
    let full = levels_at(1.0);
    let half = levels_at(0.5);
    let third = levels_at(0.33);
    assert!(half > full, "R=0.5 levels {half} vs R=1 levels {full}");
    assert!(
        third >= half,
        "R=0.33 levels {third} vs R=0.5 levels {half}"
    );
}

#[test]
fn table5_shape_slow_coarsening_preserves_quality() {
    let h = suite::by_name("19ks").expect("in suite").generate(42);
    let avg_at = |ratio: f64, base: u64| {
        (0..RUNS)
            .map(|s| {
                let mut rng = seeded_rng(base + s);
                ml_bipartition(&h, &MlConfig::clip().with_ratio(ratio), &mut rng)
                    .1
                    .cut as f64
            })
            .sum::<f64>()
            / RUNS as f64
    };
    let at_full = avg_at(1.0, 700);
    let at_half = avg_at(0.5, 800);
    assert!(
        at_half <= at_full * 1.1,
        "R=0.5 avg {at_half:.1} should not degrade vs R=1 avg {at_full:.1}"
    );
}

#[test]
fn table9_shape_multilevel_beats_placer_quadrisection() {
    let (h, pads) = suite::by_name("primary1")
        .expect("in suite")
        .generate_with_pads(42);
    let (gp, _) = gordian_quadrisection(&h, &pads, &PlacerConfig::default());
    let gordian_cut = metrics::cut(&h, &gp);
    let ml_best = (0..4)
        .map(|s| {
            let mut rng = seeded_rng(900 + s);
            ml_quadrisection(&h, &[], &mut rng).1.cut
        })
        .min()
        .expect("runs");
    assert!(
        ml_best < gordian_cut,
        "ML quadrisection {ml_best} should beat GORDIAN-style {gordian_cut}"
    );
}
