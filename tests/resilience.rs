//! End-to-end crash-safety: the `mlpart` binary survives `SIGKILL`
//! mid-batch and resumes to byte-identical outputs, rejects checkpoints
//! from other invocations, and (with the `fault` feature) turns injected
//! panics into retries and injected imbalance into repairs.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mlpart"))
}

/// A per-test scratch directory (fresh every run; removed on drop).
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("mlpart-resilience-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, file: &str) -> String {
        self.0.join(file).to_str().expect("utf8 path").to_string()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn read(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Kill the run partway through, resume it, and demand the partition (and,
/// under `obs`, the report's normative content) match an uninterrupted
/// run's bytes — at one and at four threads, resuming at a *different*
/// thread count than the killed run used.
#[test]
fn kill_mid_run_then_resume_is_byte_identical() {
    for &threads in &[1usize, 4] {
        let s = Scratch::new(&format!("kill-{threads}"));
        let common = ["syn-balu", "--runs", "40", "--seed", "3", "--retries", "2"];
        let full = bin()
            .args(common)
            .args(["--threads", &threads.to_string()])
            .args(["--output", &s.path("full.part")])
            .output()
            .expect("full run");
        assert!(full.status.success(), "{}", stderr_of(&full));

        let mut child = bin()
            .args(common)
            .args(["--threads", &threads.to_string()])
            .args(["--checkpoint", &s.path("run.ckpt")])
            .args(["--output", &s.path("killed.part")])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn");
        std::thread::sleep(std::time::Duration::from_millis(200));
        // SIGKILL: no destructors, no flushing — only the atomic rename
        // protocol protects the checkpoint. (If the batch happened to
        // finish first, resume degrades to a full restore; the byte
        // identity below must hold either way.)
        let _ = child.kill();
        let _ = child.wait();

        let other_threads = if threads == 1 { 4 } else { 1 };
        let resumed = bin()
            .args(common)
            .args(["--threads", &other_threads.to_string()])
            .args(["--checkpoint", &s.path("run.ckpt")])
            .arg("--resume")
            .args(["--output", &s.path("resumed.part")])
            .output()
            .expect("resumed run");
        let err = stderr_of(&resumed);
        assert!(resumed.status.success(), "{err}");
        assert!(err.contains("resuming from"), "{err}");
        assert_eq!(
            read(&s.path("full.part")),
            read(&s.path("resumed.part")),
            "threads {threads}->{other_threads}: resumed partition differs"
        );
    }
}

/// Same split, but with reports: the resumed report's normative content
/// (trace, cuts, profile, metrics — everything but timing) must be
/// indistinguishable from the uninterrupted run's.
#[cfg(feature = "obs")]
#[test]
fn resumed_report_content_matches_uninterrupted() {
    let s = Scratch::new("report");
    let common = ["syn-balu", "--runs", "30", "--seed", "9", "--threads", "4"];
    let full = bin()
        .args(common)
        .args(["--report-out", &s.path("full.json")])
        .output()
        .expect("full run");
    assert!(full.status.success(), "{}", stderr_of(&full));

    let mut child = bin()
        .args(common)
        .args(["--checkpoint", &s.path("run.ckpt")])
        .args(["--report-out", &s.path("killed.json")])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn");
    std::thread::sleep(std::time::Duration::from_millis(150));
    let _ = child.kill();
    let _ = child.wait();

    let resumed = bin()
        .args(common)
        .args(["--checkpoint", &s.path("run.ckpt")])
        .arg("--resume")
        .args(["--report-out", &s.path("resumed.json")])
        .output()
        .expect("resumed run");
    assert!(resumed.status.success(), "{}", stderr_of(&resumed));

    let a = std::fs::read_to_string(s.path("full.json")).expect("full report");
    let b = std::fs::read_to_string(s.path("resumed.json")).expect("resumed report");
    let d = mlpart::obs::diff::diff_documents(
        "full",
        &a,
        "resumed",
        &b,
        &mlpart::obs::diff::DiffOptions::default(),
    );
    assert_ne!(
        d.exit,
        mlpart::obs::diff::EXIT_ERROR,
        "normative content diverged:\n{}",
        d.text
    );
}

/// A checkpoint from a different invocation (here: another seed) is
/// refused with exit 2 — never a silent partial resume.
#[test]
fn resume_rejects_mismatched_checkpoint() {
    let s = Scratch::new("mismatch");
    let written = bin()
        .args(["syn-balu", "--runs", "2", "--seed", "1"])
        .args(["--checkpoint", &s.path("run.ckpt")])
        .output()
        .expect("checkpointed run");
    assert!(written.status.success(), "{}", stderr_of(&written));
    let resumed = bin()
        .args(["syn-balu", "--runs", "2", "--seed", "2"])
        .args(["--checkpoint", &s.path("run.ckpt")])
        .arg("--resume")
        .output()
        .expect("mismatched resume");
    assert_eq!(resumed.status.code(), Some(2), "{}", stderr_of(&resumed));
    assert!(
        stderr_of(&resumed).contains("different invocation"),
        "{}",
        stderr_of(&resumed)
    );

    // Corrupt checkpoints are the same refusal.
    std::fs::write(s.path("run.ckpt"), "not a checkpoint\n").expect("corrupt");
    let corrupt = bin()
        .args(["syn-balu", "--runs", "2", "--seed", "1"])
        .args(["--checkpoint", &s.path("run.ckpt")])
        .arg("--resume")
        .output()
        .expect("corrupt resume");
    assert_eq!(corrupt.status.code(), Some(2), "{}", stderr_of(&corrupt));

    // A missing checkpoint file is a fresh start, not an error.
    let fresh = bin()
        .args(["syn-balu", "--runs", "2", "--seed", "1"])
        .args(["--checkpoint", &s.path("absent.ckpt")])
        .arg("--resume")
        .output()
        .expect("fresh resume");
    assert!(fresh.status.success(), "{}", stderr_of(&fresh));
    assert!(
        stderr_of(&fresh).contains("starting fresh"),
        "{}",
        stderr_of(&fresh)
    );
}

/// An unwritable checkpoint path fails the run with exit 1 before any
/// start burns cycles.
#[test]
fn unwritable_checkpoint_path_exits_one() {
    let out = bin()
        .args(["syn-balu", "--runs", "2"])
        .args(["--checkpoint", "/nonexistent-dir/run.ckpt"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("cannot write"),
        "{}",
        stderr_of(&out)
    );
}

/// A malformed `MLPART_FAULTS` spec is invalid input: exit 2 and an error
/// naming the offending token, before any partitioning work.
#[cfg(feature = "fault")]
#[test]
fn malformed_fault_spec_exits_two() {
    let out = bin()
        .args(["syn-balu", "--runs", "1"])
        .env("MLPART_FAULTS", "panic@start:0,bogus-token")
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("invalid MLPART_FAULTS"), "{err}");
    assert!(err.contains("bogus-token"), "{err}");
}

/// An injected attempt panic is absorbed by `--retries` and the batch
/// still reports every start — bit-identically at every thread count.
#[cfg(feature = "fault")]
#[test]
fn injected_panics_are_retried_deterministically() {
    // Index 8 = start 1, attempt 0 (ATTEMPT_STRIDE = 8).
    let faults = "panic@attempt:8";
    let mut lines = Vec::new();
    for threads in ["1", "2", "4"] {
        let out = bin()
            .args(["syn-balu", "--runs", "3", "--seed", "5", "--retries", "2"])
            .args(["--threads", threads])
            .env("MLPART_FAULTS", faults)
            .output()
            .expect("runs");
        assert!(out.status.success(), "{}", stderr_of(&out));
        let err = stderr_of(&out);
        assert!(err.contains("attempt 0 panicked"), "{err}");
        assert!(err.contains("(retried)"), "{err}");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let cut_line = stdout
            .lines()
            .find(|l| l.contains("runs:"))
            .expect("cut line")
            .split('(')
            .next()
            .expect("prefix")
            .trim()
            .to_string();
        assert!(
            cut_line.contains("x3 runs"),
            "all starts survive: {cut_line}"
        );
        lines.push(cut_line);
    }
    assert_eq!(lines[0], lines[1], "thread-count-dependent retry results");
    assert_eq!(lines[0], lines[2], "thread-count-dependent retry results");

    // Without retries, the same fault costs the start.
    let out = bin()
        .args(["syn-balu", "--runs", "3", "--seed", "5"])
        .env("MLPART_FAULTS", faults)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("x2 runs"),
        "start 1 should be excluded without retries"
    );
}

/// Injected imbalance is driven back inside the balance window by the
/// deterministic repair pass; the run succeeds and says so.
#[cfg(feature = "fault")]
#[test]
fn injected_imbalance_is_repaired() {
    let s = Scratch::new("repair");
    let out = bin()
        .args(["syn-balu", "--runs", "2", "--seed", "5"])
        .args(["--output", &s.path("best.part")])
        .env("MLPART_FAULTS", "unbalance@start:0")
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("repaired to feasible"),
        "{}",
        stderr_of(&out)
    );
    assert!(!read(&s.path("best.part")).is_empty());
}

/// Repairs land in the run report's `repairs` array.
#[cfg(all(feature = "fault", feature = "obs"))]
#[test]
fn repairs_are_reported() {
    let s = Scratch::new("repair-report");
    let out = bin()
        .args(["syn-balu", "--runs", "2", "--seed", "5"])
        .args(["--report-out", &s.path("report.json")])
        .env("MLPART_FAULTS", "unbalance@start:0")
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let report = std::fs::read_to_string(s.path("report.json")).expect("report");
    assert!(
        report.contains("\"repairs\":[{\"start\":0,"),
        "repairs array missing: {report}"
    );
    assert!(report.contains("\"feasible\":true"), "{report}");
}
