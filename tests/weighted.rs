//! Integration tests for the weighted-net machinery across crates: weighted
//! cuts drive every engine consistently, and hMETIS-style coalescing during
//! multilevel coarsening preserves the objective.

use mlpart::cluster::{induce, induce_coalesced, match_clusters, MatchConfig};
use mlpart::gen::suite;
use mlpart::hypergraph::metrics;
use mlpart::hypergraph::rng::seeded_rng;
use mlpart::{fm_partition, ml_bipartition, FmConfig, HypergraphBuilder, MlConfig, Partition};

/// A ring where every third net is a weight-5 "bus".
fn weighted_ring(n: usize) -> mlpart::Hypergraph {
    let mut b = HypergraphBuilder::with_unit_areas(n);
    for i in 0..n {
        let w = if i % 3 == 0 { 5 } else { 1 };
        b.add_weighted_net([i, (i + 1) % n], w).expect("in range");
        b.add_net([i, (i + 4) % n]).expect("in range");
    }
    b.build().expect("valid")
}

#[test]
fn fm_avoids_heavy_nets() {
    // With heavy nets in the ring, FM's best cuts should prefer slicing at
    // weight-1 positions: the reported weighted cut must match metrics and
    // be no worse than cutting two buses would cost.
    let h = weighted_ring(60);
    let best = (0..10)
        .map(|s| {
            let mut rng = seeded_rng(s);
            let (p, r) = fm_partition(&h, None, &FmConfig::default(), &mut rng);
            assert_eq!(r.cut, metrics::cut(&h, &p));
            r.cut
        })
        .min()
        .expect("runs");
    // A ring bisection cuts >= 2 ring nets (+ chord nets); if both ring cuts
    // landed on buses that alone would cost 10. The engine should find
    // cheaper crossings.
    assert!(best < 10 + 8, "best weighted cut {best}");
}

#[test]
fn coalesced_multilevel_reports_true_cut_on_suite_circuit() {
    let h = suite::by_name("primary1").expect("in suite").generate(9);
    let cfg = MlConfig {
        coalesce_nets: true,
        ..MlConfig::clip()
    };
    for seed in 0..3 {
        let mut rng = seeded_rng(seed);
        let (p, r) = ml_bipartition(&h, &cfg, &mut rng);
        // The reported cut is measured on the original unweighted netlist.
        assert_eq!(r.cut, metrics::cut(&h, &p), "seed {seed}");
        assert!(p.validate(&h));
    }
}

#[test]
fn coalescing_shrinks_coarse_netlists_without_changing_objective() {
    let h = suite::by_name("balu").expect("in suite").generate(4);
    let mut rng = seeded_rng(1);
    // Coarsen twice with each policy from the same clusterings.
    let c1 = match_clusters(&h, &MatchConfig::default(), &mut rng);
    let dup1 = induce(&h, &c1).expect("clustering covers h");
    let coal1 = induce_coalesced(&h, &c1).expect("clustering covers h");
    assert!(coal1.num_nets() <= dup1.num_nets());
    assert_eq!(coal1.total_net_weight(), dup1.total_net_weight());
    // Objective equivalence on random bipartitions of the coarse level.
    for seed in 0..5 {
        let p = Partition::random(&dup1, 2, &mut seeded_rng(100 + seed));
        let p2 =
            Partition::from_assignment(&coal1, 2, p.assignment().to_vec()).expect("same modules");
        assert_eq!(metrics::cut(&dup1, &p), metrics::cut(&coal1, &p2));
    }
    // Second level: the win compounds (duplicate bundles accumulate).
    let mut rng2 = seeded_rng(2);
    let c2 = match_clusters(&dup1, &MatchConfig::default(), &mut rng2);
    let dup2 = induce(&dup1, &c2).expect("clustering covers dup1");
    let mut rng2b = seeded_rng(2);
    let c2b = match_clusters(&coal1, &MatchConfig::default(), &mut rng2b);
    let coal2 = induce_coalesced(&coal1, &c2b).expect("clustering covers coal1");
    assert!(coal2.num_nets() < dup2.num_nets() || dup2.num_nets() == 0);
}

#[test]
fn weighted_and_duplicate_representations_agree_end_to_end() {
    // Build the same logical netlist twice: once with 4 parallel unit nets,
    // once with one weight-4 net. Every metric must agree for any partition.
    let build = |weighted: bool| {
        let mut b = HypergraphBuilder::with_unit_areas(10);
        for i in 0..9usize {
            b.add_net([i, i + 1]).expect("in range");
        }
        if weighted {
            b.add_weighted_net([0, 9], 4).expect("in range");
        } else {
            for _ in 0..4 {
                b.add_net([0, 9]).expect("in range");
            }
        }
        b.build().expect("valid")
    };
    let dup = build(false);
    let merged = build(true);
    for seed in 0..8 {
        let p = Partition::random(&dup, 2, &mut seeded_rng(seed));
        let q =
            Partition::from_assignment(&merged, 2, p.assignment().to_vec()).expect("same modules");
        assert_eq!(metrics::cut(&dup, &p), metrics::cut(&merged, &q));
        assert_eq!(
            metrics::sum_of_spans_minus_one(&dup, &p),
            metrics::sum_of_spans_minus_one(&merged, &q)
        );
    }
    // And FM reaches the same optimum cut value on both representations.
    let best = |h: &mlpart::Hypergraph| {
        (0..8)
            .map(|s| {
                let mut rng = seeded_rng(50 + s);
                fm_partition(h, None, &FmConfig::default(), &mut rng).1.cut
            })
            .min()
            .expect("runs")
    };
    assert_eq!(best(&dup), best(&merged));
}
